/**
 * @file
 * Placement-optimizer evaluation: hash vs hypergraph-optimized
 * placement over the shared Zipf workload (placement_workload.hh)
 * across a sweep of skew exponents, plus the three properties the
 * perf gate holds the optimizer to — a hot-key workload rebalanced
 * to <= 1.2 imbalance, per-epoch migration bounded by the configured
 * budget (deferrals pick up the slack next epoch), and bit-identical
 * replay of the whole optimize-and-migrate loop for a fixed seed.
 */

#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "bench/placement_workload.hh"
#include "core/runtime.hh"
#include "shard/shard_router.hh"
#include "util/table.hh"

using namespace freepart;

int
main(int argc, char **argv)
{
    bench::JsonOutput json("placement", argc, argv);
    bench::banner("Load-aware placement",
                  "hypergraph-partitioned object placement vs "
                  "consistent hashing under Zipf-skewed, "
                  "community-structured traffic");

    // ---- Skew sweep: how the win scales with workload skew -----------
    util::TextTable table({"zipf", "policy", "imbalance*",
                           "cross rate*", "calls/s", "epochs",
                           "moved KiB"});
    const double exponents[] = {0.6, 0.9, 1.2};
    bool sweepWin = true;
    for (double exponent : exponents) {
        bench::ZipfOutcome byPolicy[2];
        for (int p = 0; p < 2; ++p) {
            bench::ZipfWorkloadConfig wl;
            wl.zipfExponent = exponent;
            wl.policy = p == 0 ? shard::PlacementPolicy::Hash
                               : shard::PlacementPolicy::Optimized;
            byPolicy[p] = bench::runZipfWorkload(wl);
            const bench::ZipfOutcome &run = byPolicy[p];
            table.addRow(
                {util::fmtDouble(exponent, 1),
                 p == 0 ? "hash" : "optimized",
                 util::fmtDouble(run.imbalanceSteady, 2),
                 util::fmtDouble(run.crossRateSteady, 3),
                 util::fmtDouble(run.throughput, 0),
                 std::to_string(run.stats.repartitions),
                 std::to_string(run.stats.placementMovedBytes /
                                1024)});
        }
        sweepWin = sweepWin && byPolicy[1].crossRateSteady <
                                   byPolicy[0].crossRateSteady;
        std::string tag = std::to_string(
            static_cast<int>(exponent * 10 + 0.5));
        json.metric("imbalance_hash_zipf" + tag,
                    byPolicy[0].imbalanceSteady);
        json.metric("imbalance_opt_zipf" + tag,
                    byPolicy[1].imbalanceSteady);
        json.metric("cross_rate_hash_zipf" + tag,
                    byPolicy[0].crossRateSteady);
        json.metric("cross_rate_opt_zipf" + tag,
                    byPolicy[1].crossRateSteady);
    }
    std::printf("%s", table.render().c_str());
    std::printf("(* steady state: second half of the run; 48 keys, "
                "4 shards, community blends every 3rd op)\n");

    // ---- 4- and 8-shard headline comparison (the gated metrics) ------
    bench::ZipfOutcome headline[4];
    size_t i = 0;
    for (uint32_t shards : {4u, 8u}) {
        for (auto policy : {shard::PlacementPolicy::Hash,
                            shard::PlacementPolicy::Optimized}) {
            bench::ZipfWorkloadConfig wl;
            wl.shards = shards;
            wl.policy = policy;
            headline[i++] = bench::runZipfWorkload(wl);
        }
    }
    const bench::ZipfOutcome &zh4 = headline[0], &zo4 = headline[1];
    const bench::ZipfOutcome &zh8 = headline[2], &zo8 = headline[3];
    std::printf("\nzipf 1.0 headline: 4 shards %.2f->%.2f imbalance, "
                "%.3f->%.3f cross rate; 8 shards %.3f->%.3f cross "
                "rate\n",
                zh4.imbalanceSteady, zo4.imbalanceSteady,
                zh4.crossRateSteady, zo4.crossRateSteady,
                zh8.crossRateSteady, zo8.crossRateSteady);

    // ---- Hot-key rebalance: 8 hot keys over 4 shards -----------------
    // Near-uniform popularity over few keys is the classic skewed
    // keyspace: hashing strands 3 keys on one shard (imbalance 1.5),
    // the optimizer re-spreads them 2-2-2-2.
    bench::ZipfOutcome hot[2];
    for (int p = 0; p < 2; ++p) {
        bench::ZipfWorkloadConfig wl;
        wl.slots = 8;
        wl.community = 4;
        wl.zipfExponent = 0.2;
        wl.policy = p == 0 ? shard::PlacementPolicy::Hash
                           : shard::PlacementPolicy::Optimized;
        hot[p] = bench::runZipfWorkload(wl);
    }
    std::printf("hot-key rebalance (8 keys / 4 shards): steady "
                "imbalance %.2f hash -> %.2f optimized\n",
                hot[0].imbalanceSteady, hot[1].imbalanceSteady);

    // ---- Budget: a tight epoch budget defers, never exceeds ----------
    bench::ZipfWorkloadConfig tight;
    tight.policy = shard::PlacementPolicy::Optimized;
    tight.migrationMaxBytes = 64 << 10; // a handful of mats per epoch
    bench::ZipfOutcome tightRun = bench::runZipfWorkload(tight);
    bool budgetRespected =
        tightRun.stats.placementEpochBytesPeak <= (64u << 10) &&
        zo4.stats.placementEpochBytesPeak <= (4u << 20) &&
        zo8.stats.placementEpochBytesPeak <= (4u << 20);
    std::printf("tight 64 KiB budget: epoch peak %llu bytes, %llu "
                "moves, %llu deferrals -> budget %s\n",
                static_cast<unsigned long long>(
                    tightRun.stats.placementEpochBytesPeak),
                static_cast<unsigned long long>(
                    tightRun.stats.placementMoves),
                static_cast<unsigned long long>(
                    tightRun.stats.placementDeferrals),
                budgetRespected ? "respected" : "EXCEEDED (bug)");

    // ---- Determinism: same seed, fresh cluster, identical run --------
    bench::ZipfWorkloadConfig det;
    det.policy = shard::PlacementPolicy::Optimized;
    bench::ZipfOutcome detA = bench::runZipfWorkload(det);
    bench::ZipfOutcome detB = bench::runZipfWorkload(det);
    bool identical =
        detA.stats.makespan == detB.stats.makespan &&
        detA.ackedCalls == detB.ackedCalls &&
        detA.stats.placementMovedBytes ==
            detB.stats.placementMovedBytes &&
        detA.stats.placementCut == detB.stats.placementCut &&
        detA.stats.crossShardCalls == detB.stats.crossShardCalls;
    std::printf("deterministic replay (optimize + migrate loop): "
                "%s\n", identical ? "yes" : "NO (bug)");

    bool pass = sweepWin && hot[1].imbalanceSteady <= 1.2 &&
                zo4.crossRateSteady < zh4.crossRateSteady &&
                zo8.crossRateSteady < zh8.crossRateSteady &&
                budgetRespected && identical;

    json.metric("imbalance_zipf_hash_4shards", zh4.imbalanceSteady);
    json.metric("imbalance_zipf_opt_4shards", zo4.imbalanceSteady);
    json.metric("imbalance_zipf_hash_8shards", zh8.imbalanceSteady);
    json.metric("imbalance_zipf_opt_8shards", zo8.imbalanceSteady);
    json.metric("cross_rate_zipf_hash_4shards", zh4.crossRateSteady);
    json.metric("cross_rate_zipf_opt_4shards", zo4.crossRateSteady);
    json.metric("cross_rate_zipf_hash_8shards", zh8.crossRateSteady);
    json.metric("cross_rate_zipf_opt_8shards", zo8.crossRateSteady);
    json.metric("throughput_zipf_hash_4shards", zh4.throughput);
    json.metric("throughput_zipf_opt_4shards", zo4.throughput);
    json.metric("imbalance_hotkeys_hash_4shards",
                hot[0].imbalanceSteady);
    json.metric("imbalance_hotkeys_opt_4shards",
                hot[1].imbalanceSteady);
    json.metric("tight_budget_epoch_peak_bytes",
                tightRun.stats.placementEpochBytesPeak);
    json.metric("tight_budget_deferrals",
                tightRun.stats.placementDeferrals);
    json.metric("budget_respected", budgetRespected ? 1 : 0);
    json.metric("deterministic_replay", identical ? 1 : 0);
    json.metric("cross_shard_calls_opt_4shards",
                zo4.stats.crossShardCalls);
    json.metric("proxied_bytes_opt_4shards", zo4.stats.proxiedBytes);
    json.metric("migrated_bytes_opt_4shards", zo4.stats.migratedBytes);
    json.metric("acceptance_pass", pass ? 1 : 0);
    json.flush();

    bench::note("the optimizer observes the live call trace as a "
                "hypergraph (objects x calls), partitions it with "
                "community coarsening + FM refinement, and applies "
                "moves incrementally under the migrationMaxBytes "
                "epoch budget — overrides layer on the hash ring, so "
                "failover and recovery semantics are unchanged");
    return pass ? 0 : 1;
}
