/**
 * @file
 * Chaos-and-recovery evaluation: the 23 Table 6 application models
 * replayed open-loop through the 4-shard ShardRouter, once clean and
 * once under a seeded 10% chaos plan (shard stalls, slow-agent
 * multipliers, cross-shard message drop/corrupt, one kill+rejoin
 * window per ~shard). Reports what a cluster operator would watch:
 * availability (acked / issued), p50/p99 latency on the open-loop
 * arrival axis, mean failover detection time, shed rate, and the
 * at-least-once audit (every acked token must still be answered from
 * the cluster dedup cache after the run — zero acked calls lost).
 * Everything is seeded simulated time: the same chaos seed replays
 * byte-identically.
 */

#include <algorithm>
#include <string>
#include <vector>

#include "apps/app_models.hh"
#include "apps/workload.hh"
#include "bench/bench_common.hh"
#include "core/runtime.hh"
#include "shard/chaos.hh"
#include "shard/shard_router.hh"
#include "util/table.hh"

using namespace freepart;

namespace {

constexpr uint32_t kShards = 4;
constexpr uint64_t kKeyBase = 0xc4a0500;
constexpr uint64_t kChaosSeed = 0x7ab1e6;
constexpr double kChaosRate = 0.10;

/** Unary Mat ops standing in for each app's processing chain (the
 *  trace supplies the per-app call structure; these supply the
 *  simulated work). */
const char *const kOps[] = {"cv2.GaussianBlur", "cv2.erode",
                            "cv2.dilate",       "cv2.flip",
                            "cv2.normalize",    "cv2.bitwise_not"};
constexpr size_t kNumOps = sizeof(kOps) / sizeof(*kOps);

/** One concrete call of an app session. */
struct SessionCall {
    std::string api;
    bool load = false; //!< (re)opens the session's pipeline chain
};

/** Per-app session: routing key + its call list. */
struct Session {
    uint32_t id = 0;                //!< app model id (tenant label)
    uint64_t key = 0;
    std::vector<SessionCall> calls;
    size_t next = 0;                //!< next call to issue
    ipc::Value chain;               //!< last result ref
    bool haveChain = false;
    std::vector<double> latenciesUs; //!< per-tenant breakdown
};

/**
 * Map one Table 6 app model onto a session: the workload generator's
 * trace gives the load/process round structure (rounds x calls per
 * round, derived from the model's per-type call-site counts); loads
 * become cv2.imread of the seeded fixture, chained calls cycle the
 * unary op set, and the session stores its final frame.
 */
Session
buildSession(const apps::WorkloadGenerator &generator,
             const apps::AppModel &model)
{
    Session session;
    session.id = model.id;
    session.key = kKeyBase + static_cast<uint64_t>(model.id) * 97;
    size_t op = static_cast<size_t>(model.id); // de-phase op cycles
    for (const apps::WorkloadCall &call : generator.trace(model)) {
        if (call.startsRound)
            session.calls.push_back({"cv2.imread", true});
        else
            session.calls.push_back({kOps[op++ % kNumOps], false});
    }
    session.calls.push_back({"cv2.imwrite", false});
    return session;
}

struct ChaosOutcome {
    shard::ClusterStats stats;
    uint64_t issued = 0;
    uint64_t acked = 0;
    uint64_t lostAcks = 0; //!< acked tokens not answered on resubmit
    double availability = 0.0;
    double p50Us = 0.0;
    double p99Us = 0.0;
    double p999Us = 0.0;
    /** Worst per-app-session (per-tenant) p99 — the breakdown a
     *  multi-tenant operator reads next to the aggregate tail. */
    double worstAppP99Us = 0.0;
    uint32_t worstAppId = 0;
    double shedRate = 0.0;
    double meanFailoverUs = 0.0;
};

double
percentile(std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    size_t idx = static_cast<size_t>(
        p * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

/**
 * Replay all 23 app sessions round-robin through a fresh 4-shard
 * cluster: each accepted call arrives `interarrival` ns after the
 * previous one on the shared open-loop axis and carries the given
 * deadline plus a unique dedup token. With chaos_rate > 0 a seeded
 * plan is armed before the first call. Ends with the at-least-once
 * audit: every acked token is resubmitted and must answer from the
 * dedup cache without re-executing.
 */
ChaosOutcome
runChaos(double chaos_rate, osim::SimTime interarrival,
         osim::SimTime deadline)
{
    apps::WorkloadGenerator::Config wconfig;
    wconfig.maxRounds = 3;
    wconfig.maxCallsPerRound = 12;
    wconfig.imageRows = 256;
    wconfig.imageCols = 256;
    apps::WorkloadGenerator generator(bench::registry(), wconfig);

    shard::ShardRouterConfig config;
    config.shardCount = kShards;
    config.runtime.ringBytes = 2 << 20;
    config.dedupEntries = 1 << 14; // hold every token of the run
    config.replicateObjects = true;
    config.defaultDeadline = deadline;
    shard::ShardRouter router(
        bench::registry(), bench::categorization(),
        core::PartitionPlan::freePartDefault(), std::move(config),
        [&generator](osim::Kernel &kernel) {
            generator.seedInputs(kernel);
        });

    std::vector<Session> sessions;
    uint64_t totalCalls = 0;
    for (const apps::AppModel &model : apps::appModels()) {
        sessions.push_back(buildSession(generator, model));
        totalCalls += sessions.back().calls.size();
    }
    if (chaos_rate > 0.0)
        router.applyChaosSchedule(shard::ChaosSchedule::generate(
            kChaosSeed, kShards, totalCalls, chaos_rate));

    ChaosOutcome out;
    std::vector<double> latenciesUs;
    std::vector<std::pair<uint64_t, uint64_t>> acked; // token, key
    osim::SimTime arrival = 0;
    uint64_t token = 0;
    bool live = true;
    while (live) {
        live = false;
        for (Session &session : sessions) {
            if (session.next >= session.calls.size())
                continue;
            live = true;
            const SessionCall &call = session.calls[session.next++];
            ipc::ValueList args;
            std::string api = call.api;
            if (call.load || !session.haveChain) {
                // Round boundary — or the chain was lost to chaos and
                // the app rebuilds from a fresh load (§4.4.2's
                // accepted state discrepancy).
                api = "cv2.imread";
                args.emplace_back(std::string("/data/test.fpim"));
            } else if (api == "cv2.imwrite") {
                args.emplace_back(
                    std::string("/out/app") +
                    std::to_string(session.key & 0xffff) + ".fpim");
                args.push_back(session.chain);
            } else {
                args.push_back(session.chain);
            }
            shard::CallOptions opts;
            opts.dedupToken = ++token;
            opts.arrival = arrival;
            arrival += interarrival;
            shard::RoutedCall routed =
                router.invokeAt(session.key, api, std::move(args),
                                opts);
            ++out.issued;
            if (!routed.result.ok) {
                session.haveChain = false;
                continue;
            }
            ++out.acked;
            acked.emplace_back(opts.dedupToken, session.key);
            double us = static_cast<double>(routed.latency) / 1000.0;
            latenciesUs.push_back(us);
            session.latenciesUs.push_back(us);
            if (!routed.result.values.empty() &&
                routed.result.values[0].kind() ==
                    ipc::Value::Kind::Ref) {
                session.chain = routed.result.values[0];
                session.haveChain = true;
            }
        }
    }

    // At-least-once audit: every acknowledged call must still be
    // answered from the dedup cache, without re-executing.
    for (auto &[t, key] : acked) {
        shard::RoutedCall replay =
            router.invoke(key, "cv2.bitwise_not", {}, t);
        if (!replay.result.ok || !replay.deduped)
            ++out.lostAcks;
    }

    router.drainAll();
    out.stats = router.stats();
    out.availability =
        out.issued ? static_cast<double>(out.acked) /
                         static_cast<double>(out.issued)
                   : 0.0;
    out.shedRate =
        out.issued ? static_cast<double>(out.stats.shedCalls) /
                         static_cast<double>(out.issued)
                   : 0.0;
    std::sort(latenciesUs.begin(), latenciesUs.end());
    out.p50Us = percentile(latenciesUs, 0.50);
    out.p99Us = percentile(latenciesUs, 0.99);
    out.p999Us = percentile(latenciesUs, 0.999);
    for (Session &session : sessions) {
        std::sort(session.latenciesUs.begin(),
                  session.latenciesUs.end());
        double p99 = percentile(session.latenciesUs, 0.99);
        if (p99 > out.worstAppP99Us) {
            out.worstAppP99Us = p99;
            out.worstAppId = session.id;
        }
    }
    if (out.stats.deadTransitions)
        out.meanFailoverUs =
            static_cast<double>(out.stats.detectionTime) / 1000.0 /
            static_cast<double>(out.stats.deadTransitions);
    return out;
}

/** Mean service time of the op mix on an unloaded single shard —
 *  calibrates the open-loop interarrival gap and deadline budget. */
osim::SimTime
calibrateMeanService()
{
    shard::ShardRouterConfig config;
    config.shardCount = 1;
    config.runtime.ringBytes = 2 << 20;
    shard::ShardRouter router(
        bench::registry(), bench::categorization(),
        core::PartitionPlan::freePartDefault(), std::move(config),
        [](osim::Kernel &kernel) {
            apps::WorkloadGenerator::Config wconfig;
            wconfig.imageRows = 256;
            wconfig.imageCols = 256;
            apps::WorkloadGenerator(bench::registry(), wconfig)
                .seedInputs(kernel);
        });
    uint64_t token = 0;
    ipc::ValueList load;
    load.emplace_back(std::string("/data/test.fpim"));
    shard::RoutedCall first =
        router.invoke(1, "cv2.imread", std::move(load), ++token);
    uint64_t calls = 1;
    ipc::Value chain = first.result.values.at(0);
    for (size_t round = 0; round < 4; ++round) {
        for (const char *op : kOps) {
            ipc::ValueList args;
            args.push_back(chain);
            shard::RoutedCall routed =
                router.invoke(1, op, std::move(args), ++token);
            ++calls;
            if (routed.result.ok && !routed.result.values.empty() &&
                routed.result.values[0].kind() ==
                    ipc::Value::Kind::Ref)
                chain = routed.result.values[0];
        }
    }
    router.drainAll();
    return std::max<osim::SimTime>(
        1, router.stats().makespan / std::max<uint64_t>(1, calls));
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonOutput json("chaos_cluster", argc, argv);
    bench::banner("Chaos cluster",
                  "23 Table 6 app models replayed open-loop through "
                  "4 shards, clean vs a seeded 10% chaos plan "
                  "(stalls, slow-downs, message drop/corrupt, "
                  "kill+rejoin windows)");

    osim::SimTime meanService = calibrateMeanService();
    // ~60% utilization across the cluster; deadline budget of 8x the
    // unloaded mean leaves room for queueing and one retry.
    osim::SimTime interarrival =
        std::max<osim::SimTime>(1, meanService / (kShards * 6 / 10));
    osim::SimTime deadline = meanService * 8;
    std::printf("calibration: mean service %.1f us -> interarrival "
                "%.1f us, deadline %.1f us\n\n",
                meanService / 1e3, interarrival / 1e3,
                deadline / 1e3);

    ChaosOutcome clean = runChaos(0.0, interarrival, deadline);
    ChaosOutcome chaos = runChaos(kChaosRate, interarrival, deadline);

    util::TextTable table({"run", "issued", "acked", "avail %",
                           "p50 us", "p99 us", "p999 us", "shed %",
                           "hedged", "degraded", "rejoins"});
    auto addRow = [&table](const char *name, const ChaosOutcome &o) {
        table.addRow({name, std::to_string(o.issued),
                      std::to_string(o.acked),
                      util::fmtDouble(o.availability * 100.0, 2),
                      util::fmtDouble(o.p50Us, 1),
                      util::fmtDouble(o.p99Us, 1),
                      util::fmtDouble(o.p999Us, 1),
                      util::fmtDouble(o.shedRate * 100.0, 2),
                      std::to_string(o.stats.hedgedCalls),
                      std::to_string(o.stats.degradedCalls),
                      std::to_string(o.stats.shardsRejoined)});
    };
    addRow("clean", clean);
    addRow("chaos 10%", chaos);
    std::printf("%s", table.render().c_str());

    std::printf("\nchaos plan effects: %llu stalls, %llu slowed "
                "calls, %llu dropped / %llu corrupted messages, "
                "%llu shards killed, %llu rejoined, %llu replica "
                "restores, %llu lost objects\n",
                static_cast<unsigned long long>(
                    chaos.stats.chaosStalls),
                static_cast<unsigned long long>(
                    chaos.stats.chaosSlowCalls),
                static_cast<unsigned long long>(
                    chaos.stats.messagesDropped),
                static_cast<unsigned long long>(
                    chaos.stats.messagesCorrupted),
                static_cast<unsigned long long>(
                    chaos.stats.shardsKilled),
                static_cast<unsigned long long>(
                    chaos.stats.shardsRejoined),
                static_cast<unsigned long long>(
                    chaos.stats.replicaRestores),
                static_cast<unsigned long long>(
                    chaos.stats.lostObjects));
    if (chaos.stats.deadTransitions)
        std::printf("failover detection: %llu dead transitions, "
                    "mean %.1f us from last contact to takeover\n",
                    static_cast<unsigned long long>(
                        chaos.stats.deadTransitions),
                    chaos.meanFailoverUs);
    std::printf("per-tenant tail: worst app-session p99 %.1f us "
                "(app %u clean), %.1f us (app %u chaos)\n",
                clean.worstAppP99Us, clean.worstAppId,
                chaos.worstAppP99Us, chaos.worstAppId);
    std::printf("at-least-once audit: %llu acked lost (clean), "
                "%llu acked lost (chaos)\n",
                static_cast<unsigned long long>(clean.lostAcks),
                static_cast<unsigned long long>(chaos.lostAcks));

    // Determinism: same seed, fresh cluster — byte-identical stats.
    ChaosOutcome replay = runChaos(kChaosRate, interarrival, deadline);
    bool identical =
        replay.issued == chaos.issued &&
        replay.acked == chaos.acked &&
        replay.stats.makespan == chaos.stats.makespan &&
        replay.stats.chaosStalls == chaos.stats.chaosStalls &&
        replay.stats.messagesDropped == chaos.stats.messagesDropped &&
        replay.stats.shedCalls == chaos.stats.shedCalls &&
        replay.stats.hedgedCalls == chaos.stats.hedgedCalls &&
        replay.stats.shardsRejoined == chaos.stats.shardsRejoined &&
        replay.p99Us == chaos.p99Us &&
        replay.p999Us == chaos.p999Us;
    std::printf("deterministic replay: %s\n",
                identical ? "yes" : "NO (bug)");

    bool pass = clean.availability >= 0.99 &&
                chaos.availability >= 0.95 &&
                clean.lostAcks == 0 && chaos.lostAcks == 0 &&
                chaos.p99Us > 0.0 && identical;

    json.metric("availability_at_0pct", clean.availability);
    json.metric("availability_at_10pct", chaos.availability);
    json.metric("p50_us_at_0pct", clean.p50Us);
    json.metric("p99_us_at_0pct", clean.p99Us);
    json.metric("p999_us_at_0pct", clean.p999Us);
    json.metric("p50_us_at_10pct", chaos.p50Us);
    json.metric("p99_us_at_10pct", chaos.p99Us);
    json.metric("p999_us_at_10pct", chaos.p999Us);
    json.metric("worst_app_p99_us_at_0pct", clean.worstAppP99Us);
    json.metric("worst_app_p99_us_at_10pct", chaos.worstAppP99Us);
    json.metric("shed_rate_at_10pct", chaos.shedRate);
    json.metric("hedged_calls_at_10pct", chaos.stats.hedgedCalls);
    json.metric("degraded_calls_at_10pct", chaos.stats.degradedCalls);
    json.metric("shards_rejoined_at_10pct",
                chaos.stats.shardsRejoined);
    json.metric("mean_failover_us", chaos.meanFailoverUs);
    json.metric("lost_acks_at_0pct", clean.lostAcks);
    json.metric("lost_acks_at_10pct", chaos.lostAcks);
    json.metric("lost_objects_at_10pct", chaos.stats.lostObjects);
    json.metric("deterministic_replay", identical ? 1 : 0);
    json.metric("acceptance_pass", pass ? 1 : 0);
    json.flush();

    bench::note("all time is simulated: arrivals are open-loop on a "
                "shared axis, each shard queues behind its own busy "
                "horizon, and the chaos plan derives from one seed — "
                "the 10% run replays byte-identically");
    return pass ? 0 : 1;
}
