/**
 * @file
 * Table 7 + Fig. 12 reproduction: the syscall allowlist of each agent
 * process — per-API required syscalls (from the dynamic profiles),
 * their per-agent union, and the security-relevant exclusions (no
 * write/send in loading and processing agents).
 */

#include <cctype>

#include "bench/bench_common.hh"
#include "core/runtime.hh"

using namespace freepart;

int
main(int argc, char **argv)
{
    bench::JsonOutput json("table7_syscalls", argc, argv);
    bench::banner("Table 7 / Fig. 12",
                  "System calls allowed per agent process");

    osim::Kernel kernel;
    fw::seedFixtureFiles(kernel);
    core::FreePartRuntime runtime(
        kernel, bench::registry(), bench::categorization(),
        core::PartitionPlan::freePartDefault());

    const int kPaperCounts[4] = {43, 22, 56, 27};
    const char *kTypeNames[4] = {"Loading", "Processing",
                                 "Visualizing", "Storing"};
    util::TextTable table({"Agent", "paper #", "measured #",
                           "allowed syscalls (first 10)"});
    for (uint32_t p = 0; p < 4; ++p) {
        const osim::SyscallFilter &filter = runtime.agentFilter(p);
        auto names = filter.allowedNames();
        std::string list;
        for (size_t i = 0; i < names.size() && i < 10; ++i)
            list += (i ? ", " : "") + names[i];
        if (names.size() > 10)
            list += ", ...";
        table.addRow({kTypeNames[p],
                      std::to_string(kPaperCounts[p]),
                      std::to_string(filter.allowedCount()), list});
        std::string key = kTypeNames[p];
        for (char &c : key)
            c = static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        json.metric(key + "_allowlist",
                    static_cast<uint64_t>(filter.allowedCount()));
    }
    std::printf("%s", table.render().c_str());
    json.flush();

    // The §5.3 exclusions: loading/processing cannot write or send.
    std::printf("\nexfiltration-relevant exclusions:\n");
    for (uint32_t p : {0u, 1u}) {
        const osim::SyscallFilter &filter = runtime.agentFilter(p);
        std::printf("  %-11s: send %s, sendto %s, write %s\n",
                    kTypeNames[p],
                    filter.permits(osim::Syscall::Send) ? "ALLOWED"
                                                        : "denied",
                    filter.permits(osim::Syscall::Sendto)
                        ? "ALLOWED"
                        : "denied",
                    filter.permits(osim::Syscall::Write) ? "allowed"
                                                         : "denied");
    }

    // Per-API profiles (Fig. 12-(a)) and the union (Fig. 12-(b)).
    std::printf("\nper-API required syscalls (Fig. 12-(a) analogue):\n");
    for (const char *api :
         {"cv2.CascadeClassifier.load", "cv2.VideoCapture.read",
          "cv2.imread"}) {
        const auto &entry = bench::categorization().at(api);
        std::printf("  %-30s:", api);
        for (osim::Syscall call : entry.syscalls)
            std::printf(" %s", osim::syscallName(call));
        std::printf("\n");
    }
    std::printf("\navg required syscalls per API: ");
    {
        size_t total = 0;
        for (const auto &[name, entry] : bench::categorization())
            total += entry.syscalls.size();
        std::printf("%.1f (paper: ~6)\n",
                    static_cast<double>(total) /
                        bench::categorization().size());
    }
    bench::note("loading grows after the grace period ends: "
                "lockdownAll() drops mprotect/connect and pins "
                "ioctl/select to the opened device fds");
    return 0;
}
