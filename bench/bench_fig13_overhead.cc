/**
 * @file
 * Fig. 13 reproduction: normalized runtime overhead of FreePart on
 * the 23 evaluation applications (paper: per-app 2.6%-5.7%, mean
 * 3.68%). Each app model's workload is replayed natively and under
 * FreePart; the chart is printed as an ASCII bar series.
 */

#include "apps/workload.hh"
#include "bench/bench_common.hh"
#include "util/stats.hh"

using namespace freepart;

namespace {

/** Paper's per-app normalized overhead readings (Fig. 13). */
const double kPaperOverheads[23] = {
    3.3, 3.9, 2.6, 4.1, 3.9, 4.3, 5.4, 3.2, 3.3, 5.7, 4.0, 3.2,
    3.3, 3.0, 3.9, 3.1, 3.2, 2.6, 5.4, 3.9, 3.7, 2.9, 3.7};

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonOutput json("fig13_overhead", argc, argv);
    bench::banner("Fig. 13",
                  "Normalized runtime overhead of FreePart per app");

    apps::WorkloadGenerator::Config config;
    config.imageRows = 768;
    config.imageCols = 768;
    config.maxRounds = 3;
    config.maxCallsPerRound = 24;
    apps::WorkloadGenerator generator(bench::registry(), config);

    auto elapsed = [&](const apps::AppModel &model,
                       core::PartitionPlan plan) {
        osim::Kernel kernel;
        generator.seedInputs(kernel);
        core::FreePartRuntime runtime(kernel, bench::registry(),
                                      bench::categorization(),
                                      std::move(plan));
        apps::WorkloadResult result = generator.run(runtime, model);
        if (result.callsFailed)
            std::printf("  warning: %llu failed calls in %s\n",
                        static_cast<unsigned long long>(
                            result.callsFailed),
                        model.name.c_str());
        return static_cast<double>(result.stats.elapsed());
    };

    util::TextTable table({"ID", "Name", "paper", "measured",
                           "bar (measured)"});
    util::RunningStat overheads;
    for (const apps::AppModel &model : apps::appModels()) {
        double base =
            elapsed(model, core::PartitionPlan::inHost());
        double freepart =
            elapsed(model, core::PartitionPlan::freePartDefault());
        double overhead = (freepart - base) / base * 100.0;
        overheads.add(overhead);
        std::string bar(
            static_cast<size_t>(std::max(0.0, overhead * 4.0)), '#');
        table.addRow({std::to_string(model.id), model.name,
                      util::fmtDouble(
                          kPaperOverheads[model.id - 1], 1) +
                          "%",
                      util::fmtDouble(overhead, 2) + "%", bar});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nmean overhead: paper 3.68%%, measured %.2f%% "
                "(min %.2f%%, max %.2f%%)\n",
                overheads.mean(), overheads.min(), overheads.max());
    json.metric("mean_overhead_pct", overheads.mean());
    json.metric("min_overhead_pct", overheads.min());
    json.metric("max_overhead_pct", overheads.max());
    json.flush();
    bench::note("workloads replay ImageNet-scale frames (768x768x3) "
                "through each model's Table 6 API mix");
    return 0;
}
