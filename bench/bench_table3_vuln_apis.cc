/**
 * @file
 * Table 3 reproduction: categorization of vulnerable APIs across the
 * 56-application usage study — average / max / total-distinct
 * vulnerable APIs per framework and API type, computed from the
 * reconstructed census and compared with the paper's aggregates.
 */

#include "apps/studies.hh"
#include "bench/bench_common.hh"

using namespace freepart;

namespace {

struct PaperCell {
    double avg;
    uint32_t max;
    uint32_t total;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonOutput json("table3_vuln_apis", argc, argv);
    bench::banner("Table 3",
                  "Vulnerable APIs used in the 56-application study");

    auto usage = apps::computeVulnUsage();
    auto totals = apps::computeVulnUsageTotals();

    // Paper values (Table 3): per framework x type avg/max/total.
    const std::map<std::pair<apps::StudyFramework, fw::ApiType>,
                   PaperCell>
        paper = {
            {{apps::StudyFramework::OpenCV, fw::ApiType::Loading},
             {0.6, 1, 1}},
            {{apps::StudyFramework::OpenCV, fw::ApiType::Processing},
             {0.2, 1, 1}},
            {{apps::StudyFramework::TensorFlow, fw::ApiType::Loading},
             {0.3, 2, 2}},
            {{apps::StudyFramework::TensorFlow,
              fw::ApiType::Processing},
             {2.3, 12, 24}},
            {{apps::StudyFramework::Pillow, fw::ApiType::Loading},
             {0.4, 2, 2}},
            {{apps::StudyFramework::Pillow, fw::ApiType::Visualizing},
             {0.5, 1, 1}},
            {{apps::StudyFramework::NumPy, fw::ApiType::Loading},
             {0.1, 1, 1}},
            {{apps::StudyFramework::NumPy, fw::ApiType::Processing},
             {0.4, 1, 1}},
        };

    util::TextTable table({"Framework", "Type", "paper avg/max/tot",
                           "measured avg/max/tot"});
    for (size_t f = 0; f < apps::kNumStudyFrameworks; ++f) {
        for (size_t t = 0; t < fw::kNumApiTypes; ++t) {
            auto framework = static_cast<apps::StudyFramework>(f);
            auto type = static_cast<fw::ApiType>(t);
            const apps::VulnUsageAgg &agg =
                usage.at({framework, type});
            auto paper_it = paper.find({framework, type});
            std::string paper_cell =
                paper_it == paper.end()
                    ? "0 / 0 / 0"
                    : util::fmtDouble(paper_it->second.avg, 1) +
                          " / " +
                          std::to_string(paper_it->second.max) +
                          " / " +
                          std::to_string(paper_it->second.total);
            if (paper_it == paper.end() && agg.total == 0)
                continue; // both empty: skip the row
            table.addRow({apps::studyFrameworkName(framework),
                          fw::apiTypeName(type), paper_cell,
                          util::fmtDouble(agg.avg, 1) + " / " +
                              std::to_string(agg.max) + " / " +
                              std::to_string(agg.total)});
        }
    }
    table.addRule();
    const char *type_names[4] = {"Data Loading", "Data Processing",
                                 "Visualizing", "Storing"};
    const PaperCell paper_totals[4] = {
        {1.4, 5, 6}, {2.9, 14, 26}, {0.5, 1, 1}, {0.0, 0, 0}};
    for (size_t t = 0; t < fw::kNumApiTypes; ++t) {
        table.addRow(
            {"Total", type_names[t],
             util::fmtDouble(paper_totals[t].avg, 1) + " / " +
                 std::to_string(paper_totals[t].max) + " / " +
                 std::to_string(paper_totals[t].total),
             util::fmtDouble(totals[t].avg, 1) + " / " +
                 std::to_string(totals[t].max) + " / " +
                 std::to_string(totals[t].total)});
    }
    std::printf("%s", table.render().c_str());
    json.metric("loading_total_vuln_apis",
                static_cast<uint64_t>(totals[0].total));
    json.metric("processing_total_vuln_apis",
                static_cast<uint64_t>(totals[1].total));
    json.flush();
    bench::note("census reconstructed so its aggregates reproduce "
                "the paper's Table 3 exactly (see studies.cc)");
    return 0;
}
