/**
 * @file
 * Table 12 reproduction: per-application lazy vs non-lazy copy
 * operation counts (paper totals: 1,170,660 lazy vs 82,789 non-lazy
 * = 95.08% lazy).
 */

#include "apps/workload.hh"
#include "bench/bench_common.hh"

using namespace freepart;

int
main(int argc, char **argv)
{
    bench::JsonOutput json("table12_ldc_stats", argc, argv);
    bench::banner("Table 12", "Statistics of Lazy Data Copy "
                              "operations per application");

    apps::WorkloadGenerator::Config config;
    config.imageRows = 256; // copy counting does not need big frames
    config.imageCols = 256;
    config.maxRounds = 4;
    config.maxCallsPerRound = 32;
    apps::WorkloadGenerator generator(bench::registry(), config);

    util::TextTable table({"ID", "Application", "lazy ops",
                           "non-lazy ops", "lazy share"});
    uint64_t total_lazy = 0, total_nonlazy = 0;
    for (const apps::AppModel &model : apps::appModels()) {
        osim::Kernel kernel;
        generator.seedInputs(kernel);
        core::FreePartRuntime runtime(
            kernel, bench::registry(), bench::categorization(),
            core::PartitionPlan::freePartDefault());
        apps::WorkloadResult result = generator.run(runtime, model);
        uint64_t lazy = result.stats.lazyCopies +
                        result.stats.directCopies;
        uint64_t nonlazy = result.stats.eagerCopies;
        total_lazy += lazy;
        total_nonlazy += nonlazy;
        table.addRow({std::to_string(model.id), model.name,
                      util::fmtCount(lazy), util::fmtCount(nonlazy),
                      util::fmtPercent(
                          lazy + nonlazy
                              ? static_cast<double>(lazy) /
                                    static_cast<double>(lazy +
                                                        nonlazy)
                              : 0.0,
                          1)});
    }
    table.addRule();
    table.addRow({"", "Total", util::fmtCount(total_lazy),
                  util::fmtCount(total_nonlazy),
                  util::fmtPercent(
                      static_cast<double>(total_lazy) /
                          static_cast<double>(total_lazy +
                                              total_nonlazy),
                      2)});
    std::printf("%s", table.render().c_str());
    json.metric("total_lazy_ops", total_lazy);
    json.metric("total_nonlazy_ops", total_nonlazy);
    json.metric("lazy_share",
                static_cast<double>(total_lazy) /
                    static_cast<double>(total_lazy + total_nonlazy));
    json.flush();
    std::printf("\npaper totals: 1,170,660 lazy vs 82,789 non-lazy "
                "(95.08%% lazy)\n");
    bench::note("absolute counts differ (the paper replays full "
                "datasets); the lazy share is the reproduced shape");
    return 0;
}
