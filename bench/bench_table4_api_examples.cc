/**
 * @file
 * Table 4 reproduction: example categorized APIs per framework, as
 * produced by the hybrid categorizer over the registry (the paper
 * lists imread/cvtColor/imshow/imwrite for OpenCV, Forward/Backward
 * for Caffe, torch.load/save, tf.nn pools, etc.).
 */

#include "bench/bench_common.hh"

using namespace freepart;

int
main(int argc, char **argv)
{
    bench::JsonOutput json("table4_api_examples", argc, argv);
    bench::banner("Table 4",
                  "API type categorization examples per framework");

    const analysis::Categorization &cats = bench::categorization();
    util::TextTable table(
        {"Framework", "Type", "APIs (categorized automatically)"});

    for (fw::Framework framework :
         {fw::Framework::OpenCV, fw::Framework::Caffe,
          fw::Framework::PyTorch, fw::Framework::TensorFlow}) {
        for (fw::ApiType type :
             {fw::ApiType::Loading, fw::ApiType::Processing,
              fw::ApiType::Visualizing, fw::ApiType::Storing}) {
            std::string names;
            int listed = 0;
            int total = 0;
            for (const fw::ApiDescriptor *api :
                 bench::registry().byFramework(framework)) {
                if (cats.at(api->name).type != type)
                    continue;
                ++total;
                if (listed < 3) {
                    if (!names.empty())
                        names += ", ";
                    names += api->name;
                    ++listed;
                }
            }
            if (total == 0)
                continue;
            if (total > listed)
                names +=
                    ", ... (" + std::to_string(total) + " total)";
            table.addRow({fw::frameworkName(framework),
                          fw::apiTypeShortName(type), names});
        }
        table.addRule();
    }
    std::printf("%s", table.render().c_str());

    // The hybrid cases the paper highlights.
    std::printf("\nhybrid-analysis cases (static pass blind, dynamic "
                "pass decided):\n");
    uint64_t hybrid_cases = 0;
    for (const auto &[name, entry] : cats)
        if (entry.usedDynamic) {
            ++hybrid_cases;
            std::printf("  %-28s -> %s\n", name.c_str(),
                        fw::apiTypeName(entry.type));
        }
    json.metric("hybrid_analysis_cases", hybrid_cases);
    json.flush();
    bench::note("Caffe/PyTorch/TensorFlow have no visualizing APIs, "
                "matching the paper's footnote");
    return 0;
}
