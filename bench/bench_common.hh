/**
 * @file
 * Shared support for the table/figure reproduction harnesses: one
 * registry + categorization per process, and paper-vs-measured
 * formatting helpers. Every bench binary prints the rows/series of
 * one table or figure from the paper next to the values measured on
 * this substrate.
 */

#ifndef FREEPART_BENCH_BENCH_COMMON_HH
#define FREEPART_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <string>

#include "analysis/hybrid_categorizer.hh"
#include "fw/api_registry.hh"
#include "util/table.hh"

namespace freepart::bench {

/** Process-wide registry (built once). */
inline const fw::ApiRegistry &
registry()
{
    static fw::ApiRegistry instance = fw::buildFullRegistry();
    return instance;
}

/** Process-wide offline categorization (run once). */
inline const analysis::Categorization &
categorization()
{
    static analysis::Categorization instance = [] {
        analysis::HybridCategorizer categorizer(registry());
        return categorizer.categorizeAll();
    }();
    return instance;
}

/** Print a bench banner. */
inline void
banner(const std::string &experiment, const std::string &what)
{
    std::printf("\n================================================="
                "=============\n");
    std::printf("%s — %s\n", experiment.c_str(), what.c_str());
    std::printf("==================================================="
                "===========\n");
}

/** Print a trailing note (substitutions, calibration caveats). */
inline void
note(const std::string &text)
{
    std::printf("note: %s\n", text.c_str());
}

} // namespace freepart::bench

#endif // FREEPART_BENCH_BENCH_COMMON_HH
