/**
 * @file
 * Shared support for the table/figure reproduction harnesses: one
 * registry + categorization per process, and paper-vs-measured
 * formatting helpers. Every bench binary prints the rows/series of
 * one table or figure from the paper next to the values measured on
 * this substrate.
 */

#ifndef FREEPART_BENCH_BENCH_COMMON_HH
#define FREEPART_BENCH_BENCH_COMMON_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "analysis/hybrid_categorizer.hh"
#include "fw/api_registry.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace freepart::bench {

/** Process-wide registry (built once). */
inline const fw::ApiRegistry &
registry()
{
    static fw::ApiRegistry instance = fw::buildFullRegistry();
    return instance;
}

/** Process-wide offline categorization (run once). */
inline const analysis::Categorization &
categorization()
{
    static analysis::Categorization instance = [] {
        analysis::HybridCategorizer categorizer(registry());
        return categorizer.categorizeAll();
    }();
    return instance;
}

/** Print a bench banner. */
inline void
banner(const std::string &experiment, const std::string &what)
{
    std::printf("\n================================================="
                "=============\n");
    std::printf("%s — %s\n", experiment.c_str(), what.c_str());
    std::printf("==================================================="
                "===========\n");
}

/** Print a trailing note (substitutions, calibration caveats). */
inline void
note(const std::string &text)
{
    std::printf("note: %s\n", text.c_str());
}

/**
 * Machine-readable bench output. Every bench binary accepts
 * `--json <path>`; when given, the key measured metrics are written
 * as one flat JSON object so `scripts/bench_summary.py` can merge
 * all benches into the checked-in BENCH_freepart.json and CI can
 * gate on regressions. Without the flag, nothing is written.
 */
class JsonOutput
{
  public:
    JsonOutput(std::string bench, int argc, char **argv)
        : bench(std::move(bench))
    {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg == "--json" && i + 1 < argc) {
                path = argv[++i];
            } else {
                util::panic("usage: %s [--json <path>]", argv[0]);
            }
        }
    }

    void
    metric(const std::string &key, double value)
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.6g", value);
        entries.emplace_back(key, buf);
    }

    void
    metric(const std::string &key, uint64_t value)
    {
        entries.emplace_back(key, std::to_string(value));
    }

    void
    metric(const std::string &key, int value)
    {
        metric(key, static_cast<uint64_t>(value));
    }

    /** Write the file if --json was given. Call once, at exit. */
    void
    flush() const
    {
        if (path.empty())
            return;
        std::FILE *file = std::fopen(path.c_str(), "w");
        if (!file)
            util::panic("cannot write %s", path.c_str());
        std::fprintf(file, "{\n  \"bench\": \"%s\",\n"
                           "  \"metrics\": {\n",
                     bench.c_str());
        for (size_t i = 0; i < entries.size(); ++i)
            std::fprintf(file, "    \"%s\": %s%s\n",
                         entries[i].first.c_str(),
                         entries[i].second.c_str(),
                         i + 1 < entries.size() ? "," : "");
        std::fprintf(file, "  }\n}\n");
        std::fclose(file);
        std::printf("json: wrote %s\n", path.c_str());
    }

  private:
    std::string bench;
    std::string path;
    std::vector<std::pair<std::string, std::string>> entries;
};

} // namespace freepart::bench

#endif // FREEPART_BENCH_BENCH_COMMON_HH
