/**
 * @file
 * Table 11 reproduction: coverage of the dynamic analysis over each
 * framework's APIs — fraction of APIs exercised and fraction of
 * declared data-flow operations observed, next to the paper's
 * coverage of the real frameworks.
 */

#include <algorithm>

#include "bench/bench_common.hh"

using namespace freepart;

int
main(int argc, char **argv)
{
    bench::JsonOutput json("table11_coverage", argc, argv);
    bench::banner("Table 11",
                  "Coverage of the dynamic analysis for API "
                  "categorization");

    struct PaperRow {
        fw::Framework framework;
        const char *api_coverage;
        const char *code_coverage;
    };
    const PaperRow paper[] = {
        {fw::Framework::OpenCV, "80.4% (424/527)", "91%"},
        {fw::Framework::PyTorch, "82.8% (111/134)", "84%"},
        {fw::Framework::Caffe, "91.9% (103/112)", "76%"},
        {fw::Framework::TensorFlow, "82.6% (2,236/2,704)", "73%"},
    };

    analysis::DynamicTracer tracer;
    util::TextTable table({"Framework", "paper API cov",
                           "measured API cov", "paper code cov",
                           "measured IR-op cov"});
    double min_api_cov = 1.0;
    for (const PaperRow &row : paper) {
        analysis::CoverageReport report = tracer.coverFramework(
            bench::registry(), row.framework);
        min_api_cov = std::min(min_api_cov, report.apiCoverage());
        table.addRow(
            {fw::frameworkName(row.framework), row.api_coverage,
             util::fmtPercent(report.apiCoverage(), 1) + " (" +
                 std::to_string(report.apisExecuted) + "/" +
                 std::to_string(report.apisTotal) + ")",
             row.code_coverage,
             util::fmtPercent(report.irCoverage(), 1) + " (" +
                 std::to_string(report.irOpsObserved) + "/" +
                 std::to_string(report.irOpsTotal) + ")"});
    }
    std::printf("%s", table.render().c_str());
    json.metric("min_api_coverage", min_api_cov);
    json.flush();
    bench::note("measured coverage is near-total because the "
                "registry only contains driveable APIs; the paper's "
                "frameworks include thousands of rarely-exercised "
                "entry points");
    return 0;
}
