/**
 * @file
 * Table 9 reproduction: IPC count, data transferred, and runtime of
 * each technique on the motivating example, next to the paper's
 * measurements (169..12,411 IPCs; 0.0..42.7 GB; 54.1..121.8 s).
 */

#include <cctype>

#include "baselines/evaluator.hh"
#include "bench/bench_common.hh"

using namespace freepart;

int
main(int argc, char **argv)
{
    bench::JsonOutput json("table9_overhead", argc, argv);
    bench::banner("Table 9",
                  "Overhead of existing techniques and FreePart");

    baselines::TechniqueEvaluator::Config config;
    config.submissions = 2;
    config.imageRows = 512;
    config.imageCols = 512;
    config.questions = 8;
    baselines::TechniqueEvaluator evaluator(config);
    auto reports = evaluator.evaluateAll();

    struct PaperRow {
        baselines::Technique technique;
        const char *ipc;
        const char *data;
        const char *time;
    };
    const PaperRow paper[] = {
        {baselines::Technique::CodeApi, "169", "0.1 GB", "54.3 s"},
        {baselines::Technique::CodeApiData, "6,854", "21.9 GB",
         "88.8 s"},
        {baselines::Technique::LibEntire, "12,411", "0.0 GB",
         "54.9 s"},
        {baselines::Technique::LibPerApi, "12,411", "42.7 GB",
         "121.8 s"},
        {baselines::Technique::MemoryBased, "0", "0.0 GB", "54.1 s"},
        {baselines::Technique::FreePart, "12,411", "0.4 GB",
         "55.6 s"},
        {baselines::Technique::NoIsolation, "0", "0.0 GB",
         "54.1 s (baseline)"},
    };

    util::TextTable table({"Technique", "paper IPC", "meas IPC",
                           "paper data", "meas data (MB)",
                           "paper time", "meas time (ms)",
                           "overhead"});
    for (const PaperRow &row : paper) {
        for (const baselines::TechniqueReport &report : reports) {
            if (report.technique != row.technique)
                continue;
            table.addRow(
                {baselines::techniqueName(report.technique),
                 row.ipc, util::fmtCount(report.ipcCount), row.data,
                 util::fmtDouble(
                     static_cast<double>(report.bytesTransferred) /
                         (1024.0 * 1024.0),
                     1),
                 row.time,
                 util::fmtDouble(
                     static_cast<double>(report.simTime) / 1e6, 1),
                 util::fmtDouble(report.overheadPct, 1) + "%"});
        }
    }
    std::printf("%s", table.render().c_str());

    for (const baselines::TechniqueReport &report : reports) {
        std::string key = baselines::techniqueName(report.technique);
        for (char &c : key)
            c = (std::isalnum(static_cast<unsigned char>(c)))
                    ? static_cast<char>(
                          std::tolower(static_cast<unsigned char>(c)))
                    : '_';
        json.metric(key + "_overhead_pct", report.overheadPct);
        json.metric(key + "_time_ms",
                    static_cast<double>(report.simTime) / 1e6);
        json.metric(key + "_ipc", report.ipcCount);
        json.metric(key + "_bytes", report.bytesTransferred);
    }
    json.flush();

    bench::note("shape targets: memory-based ~= baseline < FreePart "
                "(batched zero-copy RPC) <~ entire-lib, code-API "
                "(classic transports, low single digits) << "
                "code-API&Data << per-API; absolute seconds are "
                "simulated, not an i7-9750H");
    return 0;
}
