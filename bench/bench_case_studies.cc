/**
 * @file
 * Case-study reproduction (§5.4 + A.7): the autonomous drone (DoS +
 * speed corruption), the MComix3 image viewer (recent-files leak),
 * and the StegoNet trojaned-model fork bomb — each run under both an
 * unprotected configuration and FreePart.
 */

#include "apps/drone.hh"
#include "apps/image_viewer.hh"
#include "attacks/attack_driver.hh"
#include "bench/bench_common.hh"

using namespace freepart;

namespace {

core::RuntimeConfig
vanillaConfig()
{
    core::RuntimeConfig config;
    config.enforceMemoryProtection = false;
    config.restrictSyscalls = false;
    return config;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonOutput json("case_studies", argc, argv);
    bool drone_protected = false, viewer_protected = false,
         forkbomb_contained = false;
    bench::banner("§5.4.1 / Fig. 14", "Autonomous drone case study");
    for (bool with_freepart : {false, true}) {
        osim::Kernel kernel;
        auto frames = apps::DroneTracker::seedFrames(kernel, 2);
        core::FreePartRuntime runtime(
            kernel, bench::registry(), bench::categorization(),
            with_freepart ? core::PartitionPlan::freePartDefault()
                          : core::PartitionPlan::inHost(),
            with_freepart ? core::RuntimeConfig() : vanillaConfig());
        apps::DroneTracker drone(runtime);
        drone.setup();
        drone.processFrame(frames[0]);

        attacks::AttackDriver driver(runtime, bench::registry());
        // Corruption first (needs a live host to observe), DoS last.
        attacks::AttackSpec corrupt;
        corrupt.cve = "CVE-2017-12606";
        corrupt.goal = attacks::AttackGoal::CorruptData;
        corrupt.targetPid = runtime.hostPid();
        corrupt.targetAddr = drone.speedAddr();
        corrupt.targetLen = sizeof(double);
        driver.launch(corrupt);
        bool speed_intact = drone.speed() == 0.3;

        attacks::AttackSpec dos;
        dos.cve = "CVE-2017-14136";
        dos.goal = attacks::AttackGoal::Dos;
        driver.launch(dos);
        bool survived_dos = drone.operable();
        if (with_freepart)
            drone_protected = survived_dos && speed_intact;
        if (with_freepart) {
            std::printf("FreePart: survived DoS=%s, speed "
                        "intact=%s (still 0.3)\n",
                        survived_dos ? "yes" : "no",
                        speed_intact ? "yes" : "no");
        } else {
            std::printf("unprotected: survived DoS=%s, speed "
                        "intact=%s\n",
                        survived_dos ? "yes" : "NO (drone falls)",
                        speed_intact ? "yes" : "NO (flies away)");
        }
    }

    bench::banner("§5.4.2 / Fig. 15", "MComix3 image viewer leak");
    for (bool with_freepart : {false, true}) {
        osim::Kernel kernel;
        auto images = apps::ImageViewer::seedImages(kernel, 2);
        core::FreePartRuntime runtime(
            kernel, bench::registry(), bench::categorization(),
            with_freepart ? core::PartitionPlan::freePartDefault()
                          : core::PartitionPlan::inHost(),
            with_freepart ? core::RuntimeConfig() : vanillaConfig());
        apps::ImageViewer viewer(runtime);
        viewer.setup();
        for (const std::string &image : images)
            viewer.openImage(image);

        attacks::AttackDriver driver(runtime, bench::registry());
        attacks::AttackSpec spec;
        spec.cve = "CVE-2020-10378";
        spec.goal = attacks::AttackGoal::Exfiltrate;
        spec.targetPid = runtime.hostPid();
        spec.targetAddr = viewer.recentListAddr();
        spec.targetLen = 48;
        attacks::AttackOutcome outcome = driver.launch(spec);
        if (with_freepart)
            viewer_protected = !outcome.dataLeaked;
        std::printf("%-12s: recent-file names %s (network bytes: "
                    "%zu)\n",
                    with_freepart ? "FreePart" : "unprotected",
                    outcome.dataLeaked ? "LEAKED" : "protected",
                    kernel.network().bytesSent());
    }

    bench::banner("A.7", "StegoNet trojaned-model fork bomb");
    for (bool with_freepart : {false, true}) {
        osim::Kernel kernel;
        fw::seedFixtureFiles(kernel);
        core::FreePartRuntime runtime(
            kernel, bench::registry(), bench::categorization(),
            with_freepart ? core::PartitionPlan::freePartDefault()
                          : core::PartitionPlan::inHost(),
            with_freepart ? core::RuntimeConfig() : vanillaConfig());
        attacks::AttackDriver driver(runtime, bench::registry());
        attacks::AttackSpec spec;
        spec.cve = "SIM-STEGONET";
        spec.goal = attacks::AttackGoal::ForkBomb;
        attacks::AttackOutcome outcome = driver.launch(spec);
        if (with_freepart)
            forkbomb_contained = outcome.childrenSpawned == 0;
        std::printf("%-12s: torch.load of the trojaned model "
                    "spawned %u processes (%s)\n",
                    with_freepart ? "FreePart" : "unprotected",
                    outcome.childrenSpawned,
                    with_freepart
                        ? "fork denied: not in the DP/DL allowlist"
                        : "fork bomb running");
    }
    json.metric("drone_protected", drone_protected ? 1 : 0);
    json.metric("viewer_protected", viewer_protected ? 1 : 0);
    json.metric("forkbomb_contained", forkbomb_contained ? 1 : 0);
    json.flush();
    std::printf("\npaper: all three case-study attacks are contained "
                "by FreePart; reproduced above.\n");
    return 0;
}
