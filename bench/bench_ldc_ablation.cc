/**
 * @file
 * LDC ablation (§5.2): mean overhead with Lazy Data Copy on (paper:
 * 3.68%) vs off (paper: 9.7%) over the 23 application workloads, and
 * the fraction of copy operations that were lazy (paper: 95.08%,
 * Table 12's totals).
 */

#include "apps/workload.hh"
#include "bench/bench_common.hh"
#include "util/stats.hh"

using namespace freepart;

int
main(int argc, char **argv)
{
    bench::JsonOutput json("ldc_ablation", argc, argv);
    bench::banner("§5.2 LDC ablation",
                  "FreePart overhead with and without Lazy Data Copy");

    apps::WorkloadGenerator::Config config;
    config.imageRows = 768;
    config.imageCols = 768;
    config.maxRounds = 3;
    config.maxCallsPerRound = 24;
    apps::WorkloadGenerator generator(bench::registry(), config);

    auto run = [&](const apps::AppModel &model,
                   core::PartitionPlan plan,
                   core::RuntimeConfig rt_config) {
        osim::Kernel kernel;
        generator.seedInputs(kernel);
        core::FreePartRuntime runtime(kernel, bench::registry(),
                                      bench::categorization(),
                                      std::move(plan), rt_config);
        return generator.run(runtime, model);
    };

    util::RunningStat with_ldc, without_ldc, lazy_fraction;
    uint64_t total_lazy = 0, total_nonlazy = 0;
    for (const apps::AppModel &model : apps::appModels()) {
        double base =
            static_cast<double>(run(model,
                                    core::PartitionPlan::inHost(),
                                    core::RuntimeConfig())
                                    .stats.elapsed());
        core::RuntimeConfig ldc_on;
        apps::WorkloadResult on = run(
            model, core::PartitionPlan::freePartDefault(), ldc_on);
        core::RuntimeConfig ldc_off;
        ldc_off.lazyDataCopy = false;
        apps::WorkloadResult off = run(
            model, core::PartitionPlan::freePartDefault(), ldc_off);
        with_ldc.add(
            (static_cast<double>(on.stats.elapsed()) - base) / base *
            100.0);
        without_ldc.add(
            (static_cast<double>(off.stats.elapsed()) - base) /
            base * 100.0);
        lazy_fraction.add(on.stats.lazyFraction());
        total_lazy += on.stats.lazyCopies + on.stats.directCopies;
        total_nonlazy += on.stats.eagerCopies;
    }

    util::TextTable table({"Metric", "paper", "measured"});
    table.addRow({"mean overhead, LDC on", "3.68%",
                  util::fmtDouble(with_ldc.mean(), 2) + "%"});
    table.addRow({"mean overhead, LDC off", "9.7%",
                  util::fmtDouble(without_ldc.mean(), 2) + "%"});
    table.addRow(
        {"overhead ratio (off/on)", "2.6x",
         util::fmtDouble(without_ldc.mean() / with_ldc.mean(), 1) +
             "x"});
    table.addRow({"lazy share of copy ops", "95.08%",
                  util::fmtPercent(
                      static_cast<double>(total_lazy) /
                          static_cast<double>(total_lazy +
                                              total_nonlazy),
                      2)});
    std::printf("%s", table.render().c_str());
    json.metric("mean_overhead_ldc_on_pct", with_ldc.mean());
    json.metric("mean_overhead_ldc_off_pct", without_ldc.mean());
    json.metric("lazy_share",
                static_cast<double>(total_lazy) /
                    static_cast<double>(total_lazy + total_nonlazy));
    json.flush();
    bench::note("without LDC every object argument and result moves "
                "through the host process (Fig. 11-(b))");
    return 0;
}
