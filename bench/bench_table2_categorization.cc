/**
 * @file
 * Table 2 reproduction: framework APIs categorized for the motivating
 * example (paper: 3 loading / 75 processing / 6 visualizing / 2
 * storing over 86 APIs). We categorize the full MiniCV/MiniDNN
 * registry and, separately, the API set the OMR application uses.
 */

#include "apps/omr_checker.hh"
#include "bench/bench_common.hh"

using namespace freepart;

int
main(int argc, char **argv)
{
    bench::JsonOutput json("table2_categorization", argc, argv);
    bench::banner("Table 2", "API categorization for the motivating "
                             "example");

    const analysis::Categorization &cats = bench::categorization();
    auto all_counts =
        analysis::HybridCategorizer::countByType(cats);

    // The API set actually used by the OMR application.
    osim::Kernel kernel;
    apps::OmrChecker::Config omr;
    omr.imageRows = 48;
    omr.imageCols = 48;
    omr.questions = 2;
    auto inputs = apps::OmrChecker::seedInputs(kernel, 1, omr);
    core::FreePartRuntime runtime(kernel, bench::registry(), cats,
                                  core::PartitionPlan::inHost());
    apps::OmrChecker app(runtime, omr);
    app.setup();
    app.gradeSubmission(inputs[0]);
    app.finish();
    std::map<fw::ApiType, size_t> app_counts;
    for (const std::string &api : app.usedApis())
        ++app_counts[cats.at(api).type];

    util::TextTable table({"Type", "paper (OMR, 86 APIs)",
                           "measured (OMR app)",
                           "measured (full registry)"});
    table.addRow({"Data Loading", "3",
                  std::to_string(app_counts[fw::ApiType::Loading]),
                  std::to_string(all_counts[fw::ApiType::Loading])});
    table.addRow(
        {"Data Processing", "75",
         std::to_string(app_counts[fw::ApiType::Processing]),
         std::to_string(all_counts[fw::ApiType::Processing])});
    table.addRow(
        {"Visualizing", "6",
         std::to_string(app_counts[fw::ApiType::Visualizing]),
         std::to_string(all_counts[fw::ApiType::Visualizing])});
    table.addRow({"Storing", "2",
                  std::to_string(app_counts[fw::ApiType::Storing]),
                  std::to_string(all_counts[fw::ApiType::Storing])});
    std::printf("%s", table.render().c_str());

    // Categorization correctness (the §5 claim).
    size_t correct = 0;
    for (const fw::ApiDescriptor &api : bench::registry().all())
        if (cats.at(api.name).type == api.declaredType)
            ++correct;
    std::printf("\ncategorization matches ground truth for %zu/%zu "
                "APIs (paper: all correct)\n",
                correct, bench::registry().size());
    json.metric("correct_categorizations",
                static_cast<uint64_t>(correct));
    json.metric("total_apis",
                static_cast<uint64_t>(bench::registry().size()));
    json.flush();
    bench::note("processing dominates in both builds; the registry "
                "is smaller than real OpenCV's 1,405 APIs");
    return 0;
}
