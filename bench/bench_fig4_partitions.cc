/**
 * @file
 * Fig. 4 / A.1.4 reproduction: average runtime of the motivating
 * example for partition counts 4..25. The paper samples 7,750 random
 * finer-grained plans per size and sees a 1.4x overhead jump from 4
 * to 5 partitions (the hot-loop cv2.rectangle / cv2.putText pair gets
 * separated), then a plateau.
 */

#include "apps/omr_checker.hh"
#include "bench/bench_common.hh"
#include "util/rng.hh"
#include "util/stats.hh"

using namespace freepart;

namespace {

double
runUnder(core::PartitionPlan plan, uint32_t dim)
{
    osim::Kernel kernel;
    apps::OmrChecker::Config omr;
    omr.imageRows = dim;
    omr.imageCols = dim;
    auto inputs = apps::OmrChecker::seedInputs(kernel, 2, omr);
    core::FreePartRuntime runtime(kernel, bench::registry(),
                                  bench::categorization(),
                                  std::move(plan));
    apps::OmrChecker app(runtime, omr);
    app.setup();
    for (const std::string &input : inputs)
        app.gradeSubmission(input);
    app.finish();
    return static_cast<double>(runtime.stats().elapsed()) / 1e6;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonOutput json("fig4_partitions", argc, argv);
    constexpr uint32_t kDim = 256;
    constexpr int kSamples = 5; // paper: 7,750 random plans per size

    bench::banner("Fig. 4",
                  "Average runtime for different numbers of "
                  "partitions");

    // Discover the app's API set.
    std::vector<std::string> apis;
    {
        osim::Kernel kernel;
        apps::OmrChecker::Config omr;
        omr.imageRows = 48;
        omr.imageCols = 48;
        omr.questions = 2;
        auto inputs = apps::OmrChecker::seedInputs(kernel, 1, omr);
        core::FreePartRuntime runtime(
            kernel, bench::registry(), bench::categorization(),
            core::PartitionPlan::inHost());
        apps::OmrChecker app(runtime, omr);
        app.setup();
        app.gradeSubmission(inputs[0]);
        app.finish();
        apis = app.usedApis();
    }

    double base = runUnder(core::PartitionPlan::inHost(), kDim);
    double freepart =
        runUnder(core::PartitionPlan::freePartDefault(), kDim);
    std::printf("baseline (no isolation): %.2f ms\n", base);
    std::printf("%-10s %-12s %-12s %s\n", "partitions",
                "runtime(ms)", "overhead", "chart");
    auto bar = [&](double ms) {
        return std::string(
            static_cast<size_t>(std::max(0.0, (ms - base) / base *
                                                  40.0)),
            '*');
    };
    std::printf("%-10d %-12.2f %-12s %s   <- FreePart (type-based)\n",
                4, freepart,
                (util::fmtDouble((freepart - base) / base * 100, 1) +
                 "%")
                    .c_str(),
                bar(freepart).c_str());

    util::Rng rng(42);
    double jump_ratio = 0.0;
    for (uint32_t partitions = 5; partitions <= 25; ++partitions) {
        util::RunningStat stat;
        for (int sample = 0; sample < kSamples; ++sample) {
            std::map<std::string, uint32_t> map;
            for (const std::string &api : apis)
                map[api] = static_cast<uint32_t>(
                    rng.below(partitions));
            stat.add(runUnder(
                core::PartitionPlan::custom(map, partitions), kDim));
        }
        if (partitions == 5)
            jump_ratio =
                (stat.mean() - base) / (freepart - base);
        std::printf("%-10u %-12.2f %-12s %s\n", partitions,
                    stat.mean(),
                    (util::fmtDouble(
                         (stat.mean() - base) / base * 100, 1) +
                     "%")
                        .c_str(),
                    bar(stat.mean()).c_str());
    }
    std::printf("\noverhead jump from 4 to 5 partitions: %.1fx "
                "(paper: 1.4x), then a plateau\n",
                jump_ratio);
    json.metric("baseline_ms", base);
    json.metric("freepart_4part_ms", freepart);
    json.metric("jump_ratio_4_to_5", jump_ratio);
    json.flush();
    bench::note("random plans separate the hot-loop "
                "rectangle/putText pair, forcing the shared image "
                "across processes on every annotation call (A.1.4)");
    return 0;
}
