/**
 * @file
 * Fault-recovery evaluation: availability and mean-time-to-recover of
 * FreePart's agent supervision across injected crash rates, for the
 * 23 Table 6 application models. Each workload is replayed with
 * crashes injected into a fraction of agent API executions; the
 * supervision layer (retries + checkpointed restarts + backoff +
 * quarantine with host fallback) keeps the application running, while
 * the restart-off ablation shows the workload dying with its first
 * crashed agent. All faults come from a seeded deterministic plan:
 * the same seed reproduces this table bit-for-bit.
 */

#include "apps/workload.hh"
#include "bench/bench_common.hh"
#include "osim/fault_injection.hh"
#include "util/stats.hh"

using namespace freepart;

namespace {

constexpr double kCrashRates[] = {0.01, 0.05, 0.10};
constexpr uint64_t kSeed = 0xfa175eedull;

struct RunOutcome {
    double availability = 0.0; //!< fraction of workload calls ok
    core::RunStats stats;
    uint64_t injected = 0; //!< faults fired by the injector
};

RunOutcome
runOne(const apps::WorkloadGenerator &generator,
       const apps::AppModel &model, double crash_rate, bool restarts)
{
    osim::FaultInjector injector(kSeed + model.id);
    osim::Kernel kernel;
    kernel.setFaultInjector(&injector);
    generator.seedInputs(kernel);
    core::RuntimeConfig config;
    config.restartAgents = restarts;
    core::FreePartRuntime runtime(kernel, bench::registry(),
                                  bench::categorization(),
                                  core::PartitionPlan::freePartDefault(),
                                  config);
    if (crash_rate > 0.0) {
        osim::FaultSpec spec;
        spec.point = osim::FaultPoint::AgentCall;
        spec.action = osim::FaultAction::Crash;
        spec.count = 0; // unlimited
        spec.probability = crash_rate;
        spec.tag = "crash@" + std::to_string(crash_rate);
        injector.schedule(spec);
    }
    apps::WorkloadResult result = generator.run(runtime, model);
    RunOutcome outcome;
    uint64_t total = result.callsOk + result.callsFailed;
    outcome.availability =
        total ? static_cast<double>(result.callsOk) /
                    static_cast<double>(total)
              : 1.0;
    outcome.stats = result.stats;
    outcome.injected = injector.injectedCount();
    return outcome;
}

std::string
pct(double fraction)
{
    return util::fmtDouble(fraction * 100.0, 1) + "%";
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonOutput json("fault_recovery", argc, argv);
    bench::banner("Fault recovery",
                  "Availability and MTTR under injected agent crashes "
                  "(supervision vs restart-off ablation)");

    apps::WorkloadGenerator::Config wconfig;
    wconfig.imageRows = 256;
    wconfig.imageCols = 256;
    wconfig.maxRounds = 2;
    wconfig.maxCallsPerRound = 24;
    apps::WorkloadGenerator generator(bench::registry(), wconfig);

    util::TextTable table({"ID", "Name", "avail@1%", "avail@5%",
                           "avail@10%", "restarts", "MTTR(us)",
                           "quar", "no-restart@10%"});
    util::RunningStat avail10, noRestart10, mttr;
    uint64_t total_restarts = 0, total_quarantines = 0;
    uint64_t total_retries_exhausted = 0, total_injected = 0;
    for (const apps::AppModel &model : apps::appModels()) {
        RunOutcome r1 = runOne(generator, model, 0.01, true);
        RunOutcome r5 = runOne(generator, model, 0.05, true);
        RunOutcome r10 = runOne(generator, model, 0.10, true);
        RunOutcome off = runOne(generator, model, 0.10, false);
        avail10.add(r10.availability);
        noRestart10.add(off.availability);
        double mttr_us =
            static_cast<double>(r10.stats.meanTimeToRecover()) / 1e3;
        if (r10.stats.recoveries)
            mttr.add(mttr_us);
        total_restarts += r10.stats.agentRestarts;
        total_quarantines += r10.stats.quarantines;
        total_retries_exhausted += r10.stats.retriesExhausted;
        total_injected += r10.injected;
        table.addRow({std::to_string(model.id), model.name,
                      pct(r1.availability), pct(r5.availability),
                      pct(r10.availability),
                      std::to_string(r10.stats.agentRestarts),
                      util::fmtDouble(mttr_us, 1),
                      std::to_string(r10.stats.quarantines),
                      pct(off.availability)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nmean availability at 10%% crash rate: %s with "
                "supervision vs %s with restarts off\n",
                pct(avail10.mean()).c_str(),
                pct(noRestart10.mean()).c_str());
    std::printf("totals at 10%%: %llu faults injected, %llu restarts, "
                "%llu quarantines, %llu calls out of retries, mean "
                "MTTR %.1f us\n",
                static_cast<unsigned long long>(total_injected),
                static_cast<unsigned long long>(total_restarts),
                static_cast<unsigned long long>(total_quarantines),
                static_cast<unsigned long long>(
                    total_retries_exhausted),
                mttr.mean());

    // Determinism spot-check: replaying one configuration must give
    // the identical trace (same seed -> same crashes -> same table).
    const apps::AppModel &probe = apps::appModels().front();
    RunOutcome a = runOne(generator, probe, 0.10, true);
    RunOutcome b = runOne(generator, probe, 0.10, true);
    bool identical = a.availability == b.availability &&
                     a.injected == b.injected &&
                     a.stats.agentRestarts == b.stats.agentRestarts &&
                     a.stats.recoveryTime == b.stats.recoveryTime &&
                     a.stats.elapsed() == b.stats.elapsed();
    std::printf("deterministic replay: %s\n",
                identical ? "yes" : "NO (bug)");

    json.metric("mean_availability_at_10pct", avail10.mean());
    json.metric("mean_availability_no_restart_at_10pct",
                noRestart10.mean());
    json.metric("mean_mttr_us", mttr.mean());
    json.metric("total_restarts", total_restarts);
    json.metric("total_quarantines", total_quarantines);
    json.metric("total_retries_exhausted", total_retries_exhausted);
    json.metric("total_faults_injected", total_injected);
    json.metric("deterministic_replay", identical ? 1 : 0);
    json.flush();

    bench::note("crash faults target agent API executions; the "
                "supervision policy is the default (retry budget 3, "
                "4 respawns/outage, 0.2 ms base backoff, quarantine "
                "at 5 crashes/70 ms of application time with host "
                "fallback; warm-standby promotion on crash)");
    return identical ? 0 : 1;
}
