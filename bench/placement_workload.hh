/**
 * @file
 * Shared Zipf-skewed placement workload: the driver both
 * bench_shard_cluster (headline hash-vs-optimized comparison) and
 * bench_placement (exponent sweep + budget/determinism assertions)
 * run, so the two benches measure the same traffic.
 *
 * The workload models a community-structured processing service:
 * `slots` routing keys each own an image chain; slot popularity is
 * Zipf-distributed (configurable exponent); every `blendEvery`-th op
 * on a slot blends its chain with a partner slot drawn from the same
 * community block via cv2.addWeighted, pulling the partner's chain
 * head across shards when the two slots are placed apart. Consistent
 * hashing scatters communities; the optimizer co-places them, which
 * is exactly the cut the hypergraph model minimizes.
 */

#ifndef FREEPART_BENCH_PLACEMENT_WORKLOAD_HH
#define FREEPART_BENCH_PLACEMENT_WORKLOAD_HH

#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "core/runtime.hh"
#include "shard/shard_router.hh"
#include "util/rng.hh"

namespace freepart::bench {

struct ZipfWorkloadConfig {
    uint32_t shards = 4;
    shard::PlacementPolicy policy = shard::PlacementPolicy::Hash;
    /** Zipf exponent of slot popularity (0 = uniform). */
    double zipfExponent = 1.0;
    size_t slots = 48;      //!< distinct routing keys
    size_t community = 6;   //!< partner pool: slots in the same block
    size_t blendEvery = 3;  //!< every Nth op on a slot is a blend
    size_t calls = 1920;
    uint64_t seed = 0x5eedf00dull;
    /** Epoch length under the Optimized policy (ignored for Hash). */
    uint64_t repartitionEveryCalls = 240;
    double balanceEpsilon = 0.10;
    /** Per-epoch migration budget; 0 keeps the router default. */
    size_t migrationMaxBytes = 0;
};

struct ZipfOutcome {
    shard::ClusterStats stats;  //!< final cumulative counters
    /** Steady state = second half of the run, measured from counter
     *  deltas so the hash-era warmup does not mask convergence. */
    double imbalanceSteady = 1.0;
    double crossRateSteady = 0.0; //!< crossShardCalls / callsOk
    double throughput = 0.0;
    uint64_t ackedCalls = 0;
};

/** One slot's routing key (distinct keys, spread over the ring). */
inline uint64_t
zipfSlotKey(size_t slot)
{
    return 0xf00d00ull + slot * 131;
}

/**
 * Run the Zipf workload against a fresh cluster. The call sequence is
 * a pure function of the config (slot draws and partner picks consume
 * workload-side Rng only), so Hash and Optimized policies face an
 * identical trace and their outcomes are directly comparable.
 */
inline ZipfOutcome
runZipfWorkload(const ZipfWorkloadConfig &wl)
{
    shard::ShardRouterConfig config;
    config.shardCount = wl.shards;
    config.runtime.ringBytes = 2 << 20;
    config.dedupEntries = 4096;
    config.placementPolicy = wl.policy;
    config.placementBalanceEpsilon = wl.balanceEpsilon;
    if (wl.migrationMaxBytes > 0)
        config.migrationMaxBytes = wl.migrationMaxBytes;
    if (wl.policy == shard::PlacementPolicy::Optimized)
        config.repartitionEveryCalls = wl.repartitionEveryCalls;
    shard::ShardRouter router(
        registry(), categorization(),
        core::PartitionPlan::freePartDefault(), std::move(config),
        [](osim::Kernel &kernel) { fw::seedFixtureFiles(kernel); });

    const char *const unaryOps[] = {"cv2.GaussianBlur", "cv2.erode",
                                    "cv2.dilate",       "cv2.flip",
                                    "cv2.normalize",
                                    "cv2.bitwise_not"};
    constexpr size_t unaryCount = sizeof(unaryOps) / sizeof(*unaryOps);

    util::Rng rng(wl.seed);
    util::ZipfSampler zipf(wl.slots, wl.zipfExponent);
    std::vector<ipc::Value> chain(wl.slots); //!< last result ref
    std::vector<uint8_t> loaded(wl.slots, 0);
    std::vector<uint64_t> opCount(wl.slots, 0);

    ZipfOutcome out;
    shard::ClusterStats mid; //!< counters at the halfway snapshot
    // Communities interleave across the popularity ranking (members
    // of community c are slots c, c+stride, c+2*stride, ...): each
    // community mixes one hot slot with tail slots, so community
    // loads stay comparable and co-locating a whole community is
    // feasible under the balance constraint even at high skew.
    const size_t stride =
        std::max<size_t>(1, (wl.slots + wl.community - 1) /
                                wl.community);
    for (size_t i = 0; i < wl.calls; ++i) {
        size_t slot = zipf.draw(rng);
        // Partner pick consumes one draw unconditionally so the call
        // sequence stays aligned across configs that branch here.
        size_t partner =
            slot % stride + stride * rng.below(wl.community);
        if (partner >= wl.slots)
            partner = slot;

        uint64_t key = zipfSlotKey(slot);
        std::string api;
        ipc::ValueList args;
        if (!loaded[slot]) {
            api = "cv2.imread";
            args.emplace_back(std::string("/data/test.fpim"));
        } else if (wl.blendEvery > 0 &&
                   opCount[slot] % wl.blendEvery == wl.blendEvery - 1 &&
                   partner != slot && loaded[partner]) {
            api = "cv2.addWeighted";
            args.push_back(chain[slot]);
            args.push_back(chain[partner]);
            args.emplace_back(0.618);
            args.emplace_back(0.382);
        } else {
            api = unaryOps[opCount[slot] % unaryCount];
            args.push_back(chain[slot]);
        }
        shard::RoutedCall call =
            router.invoke(key, api, std::move(args), i + 1);
        ++opCount[slot];
        if (call.result.ok) {
            ++out.ackedCalls;
            if (!call.result.values.empty() &&
                call.result.values[0].kind() == ipc::Value::Kind::Ref) {
                chain[slot] = call.result.values[0];
                loaded[slot] = 1;
            }
        }
        if (i + 1 == wl.calls / 2)
            mid = router.stats();
    }

    router.drainAll();
    out.stats = router.stats();
    out.throughput = out.stats.throughputCallsPerSec();

    // Second-half imbalance: max over mean of per-shard call deltas.
    uint64_t maxDelta = 0, sumDelta = 0;
    for (size_t s = 0; s < out.stats.callsPerShard.size(); ++s) {
        uint64_t before =
            s < mid.callsPerShard.size() ? mid.callsPerShard[s] : 0;
        uint64_t delta = out.stats.callsPerShard[s] - before;
        maxDelta = std::max(maxDelta, delta);
        sumDelta += delta;
    }
    if (sumDelta > 0 && !out.stats.callsPerShard.empty())
        out.imbalanceSteady =
            static_cast<double>(maxDelta) *
            static_cast<double>(out.stats.callsPerShard.size()) /
            static_cast<double>(sumDelta);
    uint64_t okDelta = out.stats.callsOk - mid.callsOk;
    if (okDelta > 0)
        out.crossRateSteady =
            static_cast<double>(out.stats.crossShardCalls -
                                mid.crossShardCalls) /
            static_cast<double>(okDelta);
    return out;
}

} // namespace freepart::bench

#endif // FREEPART_BENCH_PLACEMENT_WORKLOAD_HH
