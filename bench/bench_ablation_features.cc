/**
 * @file
 * Feature ablation (the DESIGN.md ablation hooks): starting from full
 * FreePart, switch off one mechanism at a time and measure what each
 * one buys — which attacks get through and what each costs. This is
 * the design-choice evidence behind §4.3.2 (LDC), §4.4.1 (syscall
 * restriction + grace period), §4.4.2 (restart), and §4.4.3
 * (temporal memory protection).
 */

#include "attacks/attack_driver.hh"
#include "apps/omr_checker.hh"
#include "bench/bench_common.hh"

using namespace freepart;

namespace {

struct Variant {
    const char *name;
    const char *drops;
    core::RuntimeConfig config;
};

struct Outcome {
    bool corruption_blocked = false;
    bool exfil_blocked = false;
    bool dos_survived = false;
    bool recovered = false; //!< benign call works after the attack
    double overhead_pct = 0.0;
};

Outcome
evaluateVariant(const core::RuntimeConfig &config)
{
    Outcome outcome;

    // --- Security probes, one fresh runtime per attack ---------------
    auto fresh = [&](auto &&probe) {
        osim::Kernel kernel;
        fw::seedFixtureFiles(kernel);
        core::FreePartRuntime runtime(
            kernel, bench::registry(), bench::categorization(),
            core::PartitionPlan::freePartDefault(), config);
        osim::Addr secret = runtime.allocHostData("secret", 64);
        runtime.hostProcess().space().write(secret, "SENSITIVE",
                                            9);
        // Drive one state transition so temporal protection (when
        // enabled) is armed, then lock the filters.
        runtime.invoke("cv2.VideoCapture.read", {});
        runtime.lockdownAll();
        attacks::AttackDriver driver(runtime, bench::registry());
        probe(kernel, runtime, driver, secret);
    };

    fresh([&](osim::Kernel &, core::FreePartRuntime &runtime,
              attacks::AttackDriver &driver, osim::Addr secret) {
        attacks::AttackSpec spec;
        spec.cve = "CVE-2017-12597";
        spec.goal = attacks::AttackGoal::CorruptData;
        spec.targetPid = runtime.hostPid();
        spec.targetAddr = secret;
        spec.targetLen = 8;
        attacks::AttackOutcome res = driver.launch(spec);
        outcome.corruption_blocked = !res.dataCorrupted &&
                                     runtime.hostAlive();
    });

    fresh([&](osim::Kernel &kernel, core::FreePartRuntime &runtime,
              attacks::AttackDriver &driver, osim::Addr) {
        // §5.3: the loading agent legitimately holds other users'
        // inputs — data the exploit CAN read. Only the syscall
        // filter stands between it and the network.
        core::ApiResult img = runtime.invoke(
            "cv2.imread",
            {ipc::Value(std::string("/data/test.fpim"))});
        const fw::MatDesc &resident = runtime.storeOf(0).mat(
            img.values[0].asRef().objectId);
        attacks::AttackSpec spec;
        spec.cve = "CVE-2017-12597"; // exploit in the same agent
        spec.goal = attacks::AttackGoal::Exfiltrate;
        spec.targetPid = runtime.agentPid(0);
        spec.targetAddr = resident.addr;
        spec.targetLen = 64;
        driver.launch(spec);
        outcome.exfil_blocked = kernel.network().bytesSent() == 0;
    });

    fresh([&](osim::Kernel &, core::FreePartRuntime &runtime,
              attacks::AttackDriver &driver, osim::Addr) {
        attacks::AttackSpec spec;
        spec.cve = "CVE-2017-14136";
        spec.goal = attacks::AttackGoal::Dos;
        driver.launch(spec);
        outcome.dos_survived = runtime.hostAlive();
        core::ApiResult again = runtime.invoke(
            "cv2.imread",
            {ipc::Value(std::string("/data/test.fpim"))});
        outcome.recovered = again.ok;
    });

    // --- Cost: the OMR workload under this variant --------------------
    auto elapsed = [&](core::PartitionPlan plan,
                       core::RuntimeConfig rt_config) {
        osim::Kernel kernel;
        apps::OmrChecker::Config omr;
        omr.imageRows = 512;
        omr.imageCols = 512;
        auto inputs = apps::OmrChecker::seedInputs(kernel, 2, omr);
        core::FreePartRuntime runtime(
            kernel, bench::registry(), bench::categorization(),
            std::move(plan), rt_config);
        apps::OmrChecker app(runtime, omr);
        app.setup();
        for (const std::string &input : inputs)
            app.gradeSubmission(input);
        app.finish();
        return static_cast<double>(runtime.stats().elapsed());
    };
    core::RuntimeConfig vanilla;
    vanilla.enforceMemoryProtection = false;
    vanilla.restrictSyscalls = false;
    double base = elapsed(core::PartitionPlan::inHost(), vanilla);
    double variant =
        elapsed(core::PartitionPlan::freePartDefault(), config);
    outcome.overhead_pct = (variant - base) / base * 100.0;
    return outcome;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonOutput json("ablation_features", argc, argv);
    bench::banner("Ablation",
                  "What each FreePart mechanism buys (and costs)");

    std::vector<Variant> variants;
    variants.push_back({"full FreePart", "-", {}});
    {
        core::RuntimeConfig config;
        config.enforceMemoryProtection = false;
        variants.push_back(
            {"no temporal mprotect", "S4.4.3", config});
    }
    {
        core::RuntimeConfig config;
        config.restrictSyscalls = false;
        variants.push_back({"no syscall filters", "S4.4.1", config});
    }
    {
        core::RuntimeConfig config;
        config.restartAgents = false;
        variants.push_back({"no agent restart", "S4.4.2", config});
    }
    {
        core::RuntimeConfig config;
        config.lazyDataCopy = false;
        variants.push_back({"no lazy data copy", "S4.3.2", config});
    }
    {
        core::RuntimeConfig config;
        config.lockAfterInit = false;
        variants.push_back(
            {"no post-init lockdown", "S4.4.1", config});
    }
    {
        core::RuntimeConfig config;
        config.batchedRpc = false;
        variants.push_back(
            {"no batched zero-copy RPC", "hot path", config});
    }
    {
        core::RuntimeConfig config;
        config.supervision.backgroundRestart = false;
        variants.push_back(
            {"cold (foreground) restart", "hot path", config});
    }
    {
        core::RuntimeConfig config;
        config.checkpointFullEvery = 1;
        variants.push_back(
            {"always-full checkpoints", "hot path", config});
    }

    util::TextTable table({"Variant", "drops", "corruption",
                           "exfiltration", "DoS", "recovers",
                           "overhead"});
    for (const Variant &variant : variants) {
        Outcome outcome = evaluateVariant(variant.config);
        table.addRow(
            {variant.name, variant.drops,
             outcome.corruption_blocked ? "blocked" : "SUCCEEDS",
             outcome.exfil_blocked ? "blocked" : "LEAKS",
             outcome.dos_survived ? "contained" : "HOST DOWN",
             outcome.recovered ? "yes" : "NO",
             util::fmtDouble(outcome.overhead_pct, 1) + "%"});
        std::string key = variant.name;
        for (char &c : key)
            if (c == ' ' || c == '-' || c == '(' || c == ')')
                c = '_';
        json.metric(key + "_overhead_pct", outcome.overhead_pct);
        json.metric(key + "_all_blocked",
                    outcome.corruption_blocked &&
                            outcome.exfil_blocked &&
                            outcome.dos_survived
                        ? 1
                        : 0);
    }
    std::printf("%s", table.render().c_str());
    json.flush();
    bench::note("process isolation alone already blocks host-data "
                "corruption; the filters stop exfiltration/code "
                "rewriting; restart restores availability; LDC pays "
                "for everything");
    return 0;
}
