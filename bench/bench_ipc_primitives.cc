/**
 * @file
 * Real-time (wall-clock) google-benchmark of the IPC building blocks
 * behind §4.3's shared-memory ring-buffer RPC: SPSC ring push/pop at
 * several message sizes, message encode/decode, a full simulated
 * host->agent->host round trip, and the temporal-protection mprotect
 * flip.
 */

#include <benchmark/benchmark.h>

#include "bench/bench_common.hh"
#include "core/runtime.hh"
#include "ipc/channel.hh"
#include "ipc/spsc_ring.hh"

using namespace freepart;

namespace {

void
BM_RingPushPop(benchmark::State &state)
{
    std::vector<uint8_t> region(1 << 20);
    ipc::SpscRing ring =
        ipc::SpscRing::create(region.data(), region.size());
    std::vector<uint8_t> msg(static_cast<size_t>(state.range(0)),
                             0xab);
    std::vector<uint8_t> out;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            ring.tryPush(msg.data(), msg.size()));
        benchmark::DoNotOptimize(ring.tryPop(out));
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_RingPushPop)->Arg(64)->Arg(1024)->Arg(16384)->Arg(65536);

void
BM_MessageCodec(benchmark::State &state)
{
    ipc::Message msg;
    msg.seq = 42;
    msg.apiId = 7;
    msg.values.emplace_back(std::string("cv2.imread"));
    msg.values.emplace_back(
        std::vector<uint8_t>(static_cast<size_t>(state.range(0))));
    msg.values.emplace_back(ipc::ObjectRef{1, 99});
    for (auto _ : state) {
        std::vector<uint8_t> wire = ipc::encodeMessage(msg);
        ipc::Message back = ipc::decodeMessage(wire);
        benchmark::DoNotOptimize(back);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_MessageCodec)->Arg(64)->Arg(4096)->Arg(65536);

void
BM_ChannelRoundTrip(benchmark::State &state)
{
    osim::Kernel kernel;
    osim::Process &host = kernel.spawn("host");
    osim::Process &agent = kernel.spawn("agent");
    ipc::Channel channel(kernel, "bench", host.pid(), agent.pid());
    ipc::Message request;
    request.values.emplace_back(uint64_t{1});
    for (auto _ : state) {
        channel.sendRequest(request);
        ipc::Message incoming;
        channel.receiveRequest(incoming);
        ipc::Message response;
        response.seq = incoming.seq;
        channel.sendResponse(response);
        ipc::Message done;
        channel.receiveResponse(done);
        benchmark::DoNotOptimize(done);
    }
}
BENCHMARK(BM_ChannelRoundTrip);

void
BM_RuntimeInvokeProcessing(benchmark::State &state)
{
    osim::Kernel kernel;
    fw::seedFixtureFiles(kernel);
    core::FreePartRuntime runtime(
        kernel, bench::registry(), bench::categorization(),
        core::PartitionPlan::freePartDefault());
    core::ApiResult img = runtime.invoke(
        "cv2.imread", {ipc::Value(std::string("/data/test.fpim"))});
    for (auto _ : state) {
        core::ApiResult res =
            runtime.invoke("cv2.bitwise_not", {img.values[0]});
        benchmark::DoNotOptimize(res);
        img.values[0] = res.values[0];
    }
}
BENCHMARK(BM_RuntimeInvokeProcessing);

void
BM_TemporalProtectFlip(benchmark::State &state)
{
    osim::Kernel kernel;
    osim::Process &proc = kernel.spawn("p");
    osim::Addr addr = proc.space().alloc(
        static_cast<size_t>(state.range(0)));
    bool readonly = false;
    for (auto _ : state) {
        kernel.trustedProtect(proc.pid(), addr,
                              static_cast<size_t>(state.range(0)),
                              readonly ? osim::PermRW
                                       : osim::PermRead);
        readonly = !readonly;
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_TemporalProtectFlip)->Arg(4096)->Arg(1 << 20);

} // namespace

/**
 * Same CLI contract as the other bench binaries: `--json <path>` is
 * translated into google-benchmark's native JSON reporter flags, so
 * scripts/bench_summary.py can merge this binary too.
 */
int
main(int argc, char **argv)
{
    std::vector<std::string> storage;
    std::vector<char *> args;
    args.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            storage.push_back(std::string("--benchmark_out=") +
                              argv[++i]);
            storage.push_back("--benchmark_out_format=json");
        } else {
            storage.push_back(std::move(arg));
        }
    }
    for (std::string &s : storage)
        args.push_back(s.data());
    int pass_argc = static_cast<int>(args.size());
    benchmark::Initialize(&pass_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(pass_argc,
                                               args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
