/**
 * @file
 * Fig. 6 reproduction (Study 1): all 56 studied applications follow
 * the loading -> processing -> visualizing/storing pipeline, some
 * looping over load/process (video apps) — the observation that
 * justifies temporal partitioning.
 */

#include "apps/studies.hh"
#include "bench/bench_common.hh"

using namespace freepart;

int
main(int argc, char **argv)
{
    bench::JsonOutput json("fig6_pipeline", argc, argv);
    bench::banner("Fig. 6 / Study 1",
                  "Pipeline pattern across the 56 studied apps");

    size_t follow = 0, loops = 0, vis = 0, store = 0, both = 0;
    for (const apps::StudyApp &app : apps::studyApps()) {
        if (apps::followsPipelinePattern(app))
            ++follow;
        loops += app.loops ? 1 : 0;
        vis += app.hasVisualizing ? 1 : 0;
        store += app.hasStoring ? 1 : 0;
        both += (app.hasVisualizing && app.hasStoring) ? 1 : 0;
    }
    util::TextTable table({"Property", "paper", "measured"});
    table.addRow({"apps following the pipeline", "56/56",
                  std::to_string(follow) + "/56"});
    table.addRow({"apps looping load/process (video)", "some",
                  std::to_string(loops)});
    table.addRow({"apps with a visualizing sink", "-",
                  std::to_string(vis)});
    table.addRow({"apps with a storing sink", "-",
                  std::to_string(store)});
    table.addRow({"apps with both sinks", "-",
                  std::to_string(both)});
    std::printf("%s", table.render().c_str());

    // One example phase sequence of each shape.
    std::printf("\nexample phase sequences:\n");
    int shown = 0;
    for (const apps::StudyApp &app : apps::studyApps()) {
        if (shown >= 4)
            break;
        if ((shown == 0 && !app.loops) || (shown == 1 && app.loops) ||
            (shown == 2 && app.hasVisualizing && app.hasStoring) ||
            (shown == 3 && !app.hasVisualizing)) {
            std::printf("  app %2d: ", app.id);
            for (fw::ApiType type : app.phaseSequence())
                std::printf("%s ", fw::apiTypeShortName(type));
            std::printf("\n");
            ++shown;
        }
    }
    json.metric("apps_following_pipeline", static_cast<uint64_t>(follow));
    json.metric("apps_total", static_cast<uint64_t>(
                                  apps::studyApps().size()));
    json.flush();
    bench::note("components only read their input, enabling the "
                "read-only flip of the previous state's data");
    return 0;
}
