/**
 * @file
 * Table 6 reproduction: the 23 evaluation applications with their
 * per-type unique/total API counts, plus a consistency check that
 * the workload generator's traces honour each model's type mix.
 */

#include "apps/workload.hh"
#include "bench/bench_common.hh"

using namespace freepart;

int
main(int argc, char **argv)
{
    bench::JsonOutput json("table6_applications", argc, argv);
    bench::banner("Table 6", "Applications used for evaluation");

    util::TextTable table({"ID", "Framework", "Name", "Lang", "SLOC",
                           "DL u/t", "DP u/t", "V u/t", "ST u/t",
                           "Trace calls"});
    apps::WorkloadGenerator::Config config;
    config.imageRows = 64;
    config.imageCols = 64;
    apps::WorkloadGenerator generator(bench::registry(), config);
    for (const apps::AppModel &model : apps::appModels()) {
        auto trace = generator.trace(model);
        table.addRow(
            {std::to_string(model.id),
             fw::frameworkName(model.framework), model.name,
             model.lang, util::fmtCount(model.sloc),
             std::to_string(model.loading.unique) + "/" +
                 std::to_string(model.loading.total),
             std::to_string(model.processing.unique) + "/" +
                 std::to_string(model.processing.total),
             std::to_string(model.visualizing.unique) + "/" +
                 std::to_string(model.visualizing.total),
             std::to_string(model.storing.unique) + "/" +
                 std::to_string(model.storing.total),
             std::to_string(trace.size())});
    }
    std::printf("%s", table.render().c_str());

    // §5.1 observations re-derived from the dataset.
    uint64_t unique[4] = {}, total[4] = {};
    for (const apps::AppModel &model : apps::appModels()) {
        unique[0] += model.loading.unique;
        total[0] += model.loading.total;
        unique[1] += model.processing.unique;
        total[1] += model.processing.total;
        unique[2] += model.visualizing.unique;
        total[2] += model.visualizing.total;
        unique[3] += model.storing.unique;
        total[3] += model.storing.total;
    }
    std::printf("\naggregate unique/total: DL %llu/%llu, DP "
                "%llu/%llu, V %llu/%llu, ST %llu/%llu\n",
                (unsigned long long)unique[0],
                (unsigned long long)total[0],
                (unsigned long long)unique[1],
                (unsigned long long)total[1],
                (unsigned long long)unique[2],
                (unsigned long long)total[2],
                (unsigned long long)unique[3],
                (unsigned long long)total[3]);
    std::printf("§5.1: loading is smallest, processing largest, with "
                "many duplicated call sites per unique DP API: %s\n",
                (unique[0] < unique[1] &&
                 total[1] > 3 * unique[1])
                    ? "reproduced"
                    : "NOT reproduced");
    json.metric("app_models",
                static_cast<uint64_t>(apps::appModels().size()));
    json.metric("shape_reproduced",
                (unique[0] < unique[1] && total[1] > 3 * unique[1])
                    ? 1
                    : 0);
    json.flush();
    return 0;
}
