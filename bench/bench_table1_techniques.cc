/**
 * @file
 * Table 1 reproduction: effectiveness of the five existing isolation
 * techniques and FreePart on the motivating example — security
 * levels from the Table 8 rubric, prevented attack classes (M/C/D),
 * isolated CVE-carrying APIs, isolation granularity, process counts,
 * and the performance class.
 */

#include "baselines/evaluator.hh"
#include "bench/bench_common.hh"

using namespace freepart;

int
main(int argc, char **argv)
{
    bench::JsonOutput json("table1_techniques", argc, argv);
    bench::banner("Table 1",
                  "Effectiveness of existing techniques and FreePart");

    baselines::TechniqueEvaluator::Config config;
    config.submissions = 2;
    config.imageRows = 512;
    config.imageCols = 512;
    config.questions = 8;
    baselines::TechniqueEvaluator evaluator(config);
    auto reports = evaluator.evaluateAll();

    util::TextTable table({"Technique", "Data", "APIs", "M", "C",
                           "D", "IsolCVE", "GranMin", "GranMax",
                           "Sigma", "Procs", "Perf"});
    for (const baselines::TechniqueReport &report : reports) {
        if (report.technique == baselines::Technique::NoIsolation)
            continue;
        if (report.technique == baselines::Technique::FreePart) {
            json.metric("freepart_prevents_all",
                        report.preventsMemCorruption &&
                                report.preventsCodeManip &&
                                report.preventsDos
                            ? 1
                            : 0);
            json.metric("freepart_isolated_cve_apis",
                        static_cast<uint64_t>(report.isolatedCveApis));
            json.metric("freepart_process_count",
                        static_cast<uint64_t>(report.processCount));
        }
        table.addRow(
            {baselines::techniqueName(report.technique),
             report.checks.dataLevel(), report.checks.apiLevel(),
             report.preventsMemCorruption ? "yes" : "NO",
             report.preventsCodeManip ? "yes" : "NO",
             report.preventsDos ? "yes" : "NO",
             std::to_string(report.isolatedCveApis),
             std::to_string(report.minApisPerProc),
             std::to_string(report.maxApisPerProc),
             util::fmtDouble(report.granStddev, 1),
             std::to_string(report.processCount),
             report.perfLevel()});
    }
    std::printf("%s", table.render().c_str());
    json.flush();

    std::printf(
        "\npaper (Table 1):\n"
        "  Code-based API        : Less/..  fails M,C  isolated=1 "
        "procs=3  perf Low\n"
        "  Code-based API & Data : Mostly   prevents M isolated=2 "
        "procs=5  perf Moderate\n"
        "  Library: entire lib   : fails M,C            isolated=0 "
        "procs=2  perf Low\n"
        "  Library: per API      : prevents M,C,D       isolated=2 "
        "procs=87 perf High overhead\n"
        "  Memory-based          : prevents M, fails D  isolated=0 "
        "procs=1  perf Low\n"
        "  FreePart              : prevents M,C,D       isolated=2 "
        "procs=5  perf Low\n");
    bench::note("granularity is over this app's API set (the paper's "
                "86-API OMRChecker build is larger); rubric levels "
                "derive from the Table 8 checklist");
    return 0;
}
