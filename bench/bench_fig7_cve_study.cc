/**
 * @file
 * Fig. 7 reproduction (Study 2): 241 CVEs (Aug 2018 - Feb 2022)
 * bucketed by API type, framework, and vulnerability class. Prints
 * the histogram the figure plots.
 */

#include "apps/studies.hh"
#include "bench/bench_common.hh"

using namespace freepart;

int
main(int argc, char **argv)
{
    bench::JsonOutput json("fig7_cve_study", argc, argv);
    bench::banner("Fig. 7 / Study 2",
                  "241 CVEs categorized by API type and class");

    auto by_framework = apps::cveTotalsByFramework();
    util::TextTable fw_table({"Framework", "paper", "measured"});
    fw_table.addRow({"TensorFlow", "172",
                     std::to_string(
                         by_framework[apps::StudyFramework::
                                          TensorFlow])});
    fw_table.addRow(
        {"Pillow", "44",
         std::to_string(by_framework[apps::StudyFramework::Pillow])});
    fw_table.addRow(
        {"OpenCV", "22",
         std::to_string(by_framework[apps::StudyFramework::OpenCV])});
    fw_table.addRow(
        {"NumPy", "3",
         std::to_string(by_framework[apps::StudyFramework::NumPy])});
    std::printf("%s", fw_table.render().c_str());

    // The histogram: API type x framework, stacked by vuln class.
    std::printf("\nCVEs per API type and framework (bars = count):\n");
    for (fw::ApiType type :
         {fw::ApiType::Loading, fw::ApiType::Processing,
          fw::ApiType::Storing, fw::ApiType::Visualizing}) {
        std::printf("%s:\n", fw::apiTypeName(type));
        for (size_t f = 0; f < apps::kNumStudyFrameworks; ++f) {
            auto framework = static_cast<apps::StudyFramework>(f);
            uint32_t count = 0;
            std::string classes;
            for (const apps::CveBucket &bucket :
                 apps::cveStudyBuckets()) {
                if (bucket.apiType != type ||
                    bucket.framework != framework)
                    continue;
                count += bucket.count;
                classes += std::string(" ") +
                           apps::vulnClassName(bucket.vulnClass) +
                           "=" + std::to_string(bucket.count);
            }
            if (!count)
                continue;
            std::printf("  %-11s %3u |%s\n",
                        apps::studyFrameworkName(framework), count,
                        std::string(count, '#').c_str());
            std::printf("     classes:%s\n", classes.c_str());
        }
    }

    auto by_type = apps::cveTotalsByType();
    std::printf("\nloading+processing share: %u/241 (the paper's "
                "\"majority\" observation)\n",
                by_type[fw::ApiType::Loading] +
                    by_type[fw::ApiType::Processing]);
    json.metric("loading_processing_cves",
                static_cast<uint64_t>(by_type[fw::ApiType::Loading] +
                                      by_type[fw::ApiType::Processing]));
    json.metric("tensorflow_cves",
                static_cast<uint64_t>(
                    by_framework[apps::StudyFramework::TensorFlow]));
    json.flush();
    bench::note("per-bucket counts reconstructed to the reported "
                "framework totals and the loading/processing-heavy "
                "shape");
    return 0;
}
