/**
 * @file
 * Appendix A.6 reproduction: finer-grained system-call restriction by
 * sub-partitioning an agent. The default loading agent allows the
 * union of its APIs' syscalls (so an exploited classifier loader can
 * reach ioctl, which only the camera path needs). Manually splitting
 * the loading agent — file loaders vs camera capture — shrinks each
 * allowlist, at the cost of extra IPCs for APIs that share data.
 */

#include "bench/bench_common.hh"
#include "core/runtime.hh"

using namespace freepart;

namespace {

/** Build the A.6 plan: loading split in two, rest as FreePart. */
core::PartitionPlan
subPartitionedPlan()
{
    // Partitions: 0 = file loaders, 1 = camera loader, 2 =
    // processing, 3 = visualizing, 4 = storing.
    std::map<std::string, uint32_t> map;
    const analysis::Categorization &cats = bench::categorization();
    for (const auto &[name, entry] : cats) {
        switch (entry.type) {
          case fw::ApiType::Loading:
            map[name] = name == "cv2.VideoCapture.read" ? 1 : 0;
            break;
          case fw::ApiType::Processing:
          case fw::ApiType::Neutral:
          case fw::ApiType::Unknown:
            map[name] = 2;
            break;
          case fw::ApiType::Visualizing:
            map[name] = 3;
            break;
          case fw::ApiType::Storing:
            map[name] = 4;
            break;
        }
    }
    return core::PartitionPlan::custom(std::move(map), 5);
}

struct Run {
    size_t fileLoaderSyscalls = 0;
    size_t cameraLoaderSyscalls = 0;
    bool ioctlReachableFromFileLoader = false;
    uint64_t ipc = 0;
    osim::SimTime time = 0;
};

Run
measure(core::PartitionPlan plan, bool split)
{
    Run run;
    osim::Kernel kernel;
    fw::seedFixtureFiles(kernel);
    core::FreePartRuntime runtime(kernel, bench::registry(),
                                  bench::categorization(),
                                  std::move(plan));
    // Mixed loading workload: classifier + frames + decode chain.
    for (int i = 0; i < 4; ++i) {
        core::ApiResult img = runtime.invoke(
            "cv2.imread",
            {ipc::Value(std::string("/data/test.fpim"))});
        core::ApiResult frame =
            runtime.invoke("cv2.VideoCapture.read", {});
        if (img.ok)
            runtime.invoke("cv2.GaussianBlur", {img.values[0]});
        if (frame.ok)
            runtime.invoke("cv2.GaussianBlur", {frame.values[0]});
    }
    run.fileLoaderSyscalls = runtime.agentFilter(0).allowedCount();
    run.cameraLoaderSyscalls =
        runtime.agentFilter(split ? 1 : 0).allowedCount();
    run.ioctlReachableFromFileLoader =
        runtime.agentFilter(0).permits(osim::Syscall::Ioctl);
    run.ipc = runtime.stats().ipcMessages;
    run.time = runtime.stats().elapsed();
    return run;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonOutput json("a6_subpartition", argc, argv);
    bench::banner("A.6", "Finer-grained restriction via "
                         "sub-partitioned agent processes");

    Run coarse = measure(core::PartitionPlan::freePartDefault(),
                         false);
    Run fine = measure(subPartitionedPlan(), true);

    util::TextTable table({"Layout", "file-loader allowlist",
                           "camera-loader allowlist",
                           "ioctl from file loader", "IPC msgs",
                           "sim time (ms)"});
    table.addRow({"4 partitions (default)",
                  std::to_string(coarse.fileLoaderSyscalls),
                  "(same process)",
                  coarse.ioctlReachableFromFileLoader
                      ? "REACHABLE"
                      : "blocked",
                  util::fmtCount(coarse.ipc),
                  util::fmtDouble(
                      static_cast<double>(coarse.time) / 1e6, 2)});
    table.addRow({"5 partitions (split loading)",
                  std::to_string(fine.fileLoaderSyscalls),
                  std::to_string(fine.cameraLoaderSyscalls),
                  fine.ioctlReachableFromFileLoader ? "REACHABLE"
                                                    : "blocked",
                  util::fmtCount(fine.ipc),
                  util::fmtDouble(
                      static_cast<double>(fine.time) / 1e6, 2)});
    std::printf("%s", table.render().c_str());
    json.metric("coarse_allowlist",
                static_cast<uint64_t>(coarse.fileLoaderSyscalls));
    json.metric("fine_file_allowlist",
                static_cast<uint64_t>(fine.fileLoaderSyscalls));
    json.metric("fine_ioctl_blocked",
                fine.ioctlReachableFromFileLoader ? 0 : 1);
    json.metric("coarse_ipc", coarse.ipc);
    json.metric("fine_ipc", fine.ipc);
    json.flush();
    std::printf("\npaper (A.6 / Fig. 12): a compromised "
                "CascadeClassifier::load() in the joint agent can "
                "reach ioctl, which only VideoCapture needs; per-API "
                "or sub-partitioned processes remove it at the cost "
                "of extra IPCs for shared data.\n");
    return 0;
}
