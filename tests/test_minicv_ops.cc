/**
 * @file
 * Correctness tests for the MiniCV image kernels: algebraic
 * properties (idempotence, involution, monotonicity, range
 * preservation) plus hand-checked small cases.
 */

#include <gtest/gtest.h>

#include "fw/minicv_ops.hh"

namespace freepart::fw::ops {
namespace {

std::vector<uint8_t>
gradient(uint32_t rows, uint32_t cols, uint32_t ch = 1)
{
    std::vector<uint8_t> out(static_cast<size_t>(rows) * cols * ch);
    size_t i = 0;
    for (uint32_t r = 0; r < rows; ++r)
        for (uint32_t c = 0; c < cols; ++c)
            for (uint32_t k = 0; k < ch; ++k)
                out[i++] =
                    static_cast<uint8_t>((r * 7 + c * 13 + k) & 0xff);
    return out;
}

TEST(GaussianBlur, PreservesConstantImage)
{
    std::vector<uint8_t> src(32 * 32, 200), dst(32 * 32);
    gaussianBlur3x3(src.data(), dst.data(), 32, 32, 1);
    for (uint8_t v : dst)
        EXPECT_EQ(v, 200);
}

TEST(GaussianBlur, SmoothsAnImpulse)
{
    std::vector<uint8_t> src(9 * 9, 0), dst(9 * 9);
    src[4 * 9 + 4] = 255;
    gaussianBlur3x3(src.data(), dst.data(), 9, 9, 1);
    // Center keeps the largest mass; energy spreads to neighbours.
    EXPECT_GT(dst[4 * 9 + 4], dst[3 * 9 + 4]);
    EXPECT_GT(dst[3 * 9 + 4], 0);
    EXPECT_LT(dst[4 * 9 + 4], 255);
    EXPECT_EQ(dst[0], 0);
}

TEST(BoxBlur, MeanOfUniformRegionsUnchanged)
{
    std::vector<uint8_t> src(16 * 16, 77), dst(16 * 16);
    boxBlur(src.data(), dst.data(), 16, 16, 1, 5);
    for (uint8_t v : dst)
        EXPECT_EQ(v, 77);
}

TEST(ErodeDilate, OrderingHolds)
{
    // For any image: erode <= original <= dilate, pointwise.
    auto src = gradient(20, 20);
    std::vector<uint8_t> eroded(src.size()), dilated(src.size());
    erode3x3(src.data(), eroded.data(), 20, 20, 1);
    dilate3x3(src.data(), dilated.data(), 20, 20, 1);
    for (size_t i = 0; i < src.size(); ++i) {
        EXPECT_LE(eroded[i], src[i]);
        EXPECT_GE(dilated[i], src[i]);
    }
}

TEST(ErodeDilate, ErodeShrinksBrightSquare)
{
    std::vector<uint8_t> src(10 * 10, 0), dst(10 * 10);
    for (uint32_t r = 3; r <= 6; ++r)
        for (uint32_t c = 3; c <= 6; ++c)
            src[r * 10 + c] = 255;
    erode3x3(src.data(), dst.data(), 10, 10, 1);
    // Only the 2x2 interior survives a 3x3 erosion of a 4x4 square.
    int bright = 0;
    for (uint8_t v : dst)
        if (v == 255)
            ++bright;
    EXPECT_EQ(bright, 4);
}

TEST(Morphology, OpenThenCloseIdempotentOnBinaryBlob)
{
    std::vector<uint8_t> src(24 * 24, 0);
    for (uint32_t r = 8; r < 16; ++r)
        for (uint32_t c = 8; c < 16; ++c)
            src[r * 24 + c] = 255;
    std::vector<uint8_t> once(src.size()), twice(src.size());
    morphOpen(src.data(), once.data(), 24, 24, 1);
    morphOpen(once.data(), twice.data(), 24, 24, 1);
    EXPECT_EQ(once, twice);
}

TEST(ToGray, AveragesChannels)
{
    std::vector<uint8_t> src = {10, 20, 30, 90, 90, 90};
    std::vector<uint8_t> dst(2);
    toGray(src.data(), dst.data(), 1, 2, 3);
    EXPECT_EQ(dst[0], 20);
    EXPECT_EQ(dst[1], 90);
}

TEST(Sobel, FlatImageHasZeroGradient)
{
    std::vector<uint8_t> src(16 * 16, 123), dst(16 * 16, 99);
    sobelMagnitude(src.data(), dst.data(), 16, 16);
    for (uint8_t v : dst)
        EXPECT_EQ(v, 0);
}

TEST(Sobel, VerticalEdgeDetected)
{
    std::vector<uint8_t> src(16 * 16, 0), dst(16 * 16);
    for (uint32_t r = 0; r < 16; ++r)
        for (uint32_t c = 8; c < 16; ++c)
            src[r * 16 + c] = 255;
    sobelMagnitude(src.data(), dst.data(), 16, 16);
    // Strong response along column 7/8, none far away.
    EXPECT_GT(dst[5 * 16 + 8], 200);
    EXPECT_EQ(dst[5 * 16 + 2], 0);
}

TEST(Canny, EdgesAreBinary)
{
    auto src = gradient(32, 32);
    std::vector<uint8_t> dst(src.size());
    cannyEdges(src.data(), dst.data(), 32, 32, 40, 120);
    for (uint8_t v : dst)
        EXPECT_TRUE(v == 0 || v == 255);
}

TEST(Resize, NearestPreservesCorners)
{
    std::vector<uint8_t> src = {10, 20, 30, 40};
    std::vector<uint8_t> dst(4 * 4);
    resizeNearest(src.data(), 2, 2, 1, dst.data(), 4, 4);
    EXPECT_EQ(dst[0], 10);
    EXPECT_EQ(dst[3], 20);
    EXPECT_EQ(dst[12], 30);
    EXPECT_EQ(dst[15], 40);
}

TEST(Resize, BilinearIdentityWhenSameSize)
{
    auto src = gradient(8, 8);
    std::vector<uint8_t> dst(src.size());
    resizeBilinear(src.data(), 8, 8, 1, dst.data(), 8, 8);
    EXPECT_EQ(src, dst);
}

TEST(Resize, BilinearStaysInRange)
{
    auto src = gradient(13, 17);
    std::vector<uint8_t> dst(29 * 31);
    resizeBilinear(src.data(), 13, 17, 1, dst.data(), 29, 31);
    uint8_t lo = 255, hi = 0;
    for (uint8_t v : src) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    for (uint8_t v : dst) {
        EXPECT_GE(v, lo);
        EXPECT_LE(v, hi);
    }
}

TEST(EqualizeHist, OutputSpansFullRange)
{
    // A narrow-range input should stretch towards 0..255.
    std::vector<uint8_t> src(64 * 64);
    for (size_t i = 0; i < src.size(); ++i)
        src[i] = static_cast<uint8_t>(100 + (i % 20));
    std::vector<uint8_t> dst(src.size());
    equalizeHist(src.data(), dst.data(), 64, 64);
    uint8_t lo = 255, hi = 0;
    for (uint8_t v : dst) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    EXPECT_EQ(lo, 0);
    EXPECT_GT(hi, 240);
}

TEST(Threshold, Binarizes)
{
    std::vector<uint8_t> src = {0, 100, 128, 129, 255};
    std::vector<uint8_t> dst(5);
    threshold(src.data(), dst.data(), 5, 128, 255);
    EXPECT_EQ(dst[0], 0);
    EXPECT_EQ(dst[1], 0);
    EXPECT_EQ(dst[2], 0);
    EXPECT_EQ(dst[3], 255);
    EXPECT_EQ(dst[4], 255);
}

TEST(Warp, IdentityHomographyIsNoop)
{
    auto src = gradient(12, 12, 3);
    std::vector<uint8_t> dst(src.size());
    const double h[9] = {1, 0, 0, 0, 1, 0, 0, 0, 1};
    warpPerspective(src.data(), dst.data(), 12, 12, 3, h);
    EXPECT_EQ(src, dst);
}

TEST(Warp, TranslationShiftsContent)
{
    std::vector<uint8_t> src(8 * 8, 0), dst(8 * 8);
    src[2 * 8 + 2] = 200;
    // x' = x + 3 (columns shift right by 3).
    const double h[9] = {1, 0, 3, 0, 1, 0, 0, 0, 1};
    warpPerspective(src.data(), dst.data(), 8, 8, 1, h);
    EXPECT_EQ(dst[2 * 8 + 5], 200);
    EXPECT_EQ(dst[2 * 8 + 2], 0);
}

TEST(Warp, SingularMatrixYieldsBlack)
{
    auto src = gradient(8, 8);
    std::vector<uint8_t> dst(src.size(), 7);
    const double h[9] = {1, 2, 3, 2, 4, 6, 1, 1, 1}; // rank-deficient
    warpPerspective(src.data(), dst.data(), 8, 8, 1, h);
    for (uint8_t v : dst)
        EXPECT_EQ(v, 0);
}

TEST(DrawRect, OutlineOnlyTouched)
{
    std::vector<uint8_t> buf(10 * 10, 0);
    drawRect(buf.data(), 10, 10, 1, {2, 2, 4, 4}, 255);
    EXPECT_EQ(buf[2 * 10 + 2], 255); // corner
    EXPECT_EQ(buf[2 * 10 + 4], 255); // top edge
    EXPECT_EQ(buf[6 * 10 + 6], 255); // bottom-right corner
    EXPECT_EQ(buf[4 * 10 + 4], 0);   // interior untouched
    EXPECT_EQ(buf[0], 0);            // exterior untouched
}

TEST(DrawText, RendersKnownGlyphPixels)
{
    std::vector<uint8_t> buf(16 * 16, 0);
    drawText(buf.data(), 16, 16, 1, 2, 2, "1", 255);
    // The '1' glyph has its full-height column at glyph column 2.
    int lit = 0;
    for (uint8_t v : buf)
        if (v == 255)
            ++lit;
    EXPECT_GT(lit, 4);
    EXPECT_LT(lit, 36);
}

TEST(DrawText, ClipsAtImageBorder)
{
    std::vector<uint8_t> buf(8 * 8, 0);
    EXPECT_NO_THROW(
        drawText(buf.data(), 8, 8, 1, 6, 6, "ABC", 255));
}

TEST(ConnectedComponents, CountsAndBoxes)
{
    std::vector<uint8_t> img(12 * 12, 0);
    // Two disjoint blobs.
    img[1 * 12 + 1] = 255;
    img[1 * 12 + 2] = 255;
    for (uint32_t r = 6; r < 9; ++r)
        for (uint32_t c = 6; c < 10; ++c)
            img[r * 12 + c] = 255;
    std::vector<Box> boxes;
    EXPECT_EQ(connectedComponents(img.data(), 12, 12, &boxes), 2u);
    ASSERT_EQ(boxes.size(), 2u);
    EXPECT_EQ(boxes[0], (Box{1, 1, 0, 1}));
    EXPECT_EQ(boxes[1], (Box{6, 6, 2, 3}));
}

TEST(ConnectedComponents, DiagonalBlobsAreSeparate)
{
    // 4-connectivity: diagonal neighbours are distinct components.
    std::vector<uint8_t> img(4 * 4, 0);
    img[0] = 255;
    img[1 * 4 + 1] = 255;
    EXPECT_EQ(connectedComponents(img.data(), 4, 4), 2u);
}

TEST(TemplateMatch, FindsEmbeddedPatch)
{
    auto img = gradient(24, 24);
    // Cut the patch at (5, 9) as a template.
    std::vector<uint8_t> tmpl(6 * 6);
    for (uint32_t r = 0; r < 6; ++r)
        for (uint32_t c = 0; c < 6; ++c)
            tmpl[r * 6 + c] = img[(r + 5) * 24 + (c + 9)];
    uint32_t br = 0, bc = 0;
    uint64_t score =
        templateMatchBest(img.data(), 24, 24, tmpl.data(), 6, 6, br,
                          bc);
    EXPECT_EQ(score, 0u);
    EXPECT_EQ(br, 5u);
    EXPECT_EQ(bc, 9u);
}

TEST(TemplateMatch, OversizedTemplateRejected)
{
    std::vector<uint8_t> img(4 * 4), tmpl(8 * 8);
    uint32_t br, bc;
    EXPECT_EQ(templateMatchBest(img.data(), 4, 4, tmpl.data(), 8, 8,
                                br, bc),
              UINT64_MAX);
}

TEST(Flip, InvolutionRestoresOriginal)
{
    auto src = gradient(9, 7, 3);
    std::vector<uint8_t> once(src.size()), twice(src.size());
    flipHorizontal(src.data(), once.data(), 9, 7, 3);
    flipHorizontal(once.data(), twice.data(), 9, 7, 3);
    EXPECT_EQ(src, twice);
    EXPECT_NE(src, once);
}

TEST(AddWeighted, BlendsAndClamps)
{
    std::vector<uint8_t> a = {100, 200}, b = {100, 200}, dst(2);
    addWeighted(a.data(), b.data(), dst.data(), 2, 0.5, 0.5);
    EXPECT_EQ(dst[0], 100);
    EXPECT_EQ(dst[1], 200);
    addWeighted(a.data(), b.data(), dst.data(), 2, 2.0, 2.0);
    EXPECT_EQ(dst[1], 255); // clamped
}

TEST(Normalize, FullRangeAfterNormalization)
{
    std::vector<uint8_t> src = {50, 60, 70}, dst(3);
    normalizeMinMax(src.data(), dst.data(), 3);
    EXPECT_EQ(dst[0], 0);
    EXPECT_EQ(dst[2], 255);
}

TEST(Normalize, ConstantInputBecomesZero)
{
    std::vector<uint8_t> src(5, 99), dst(5, 1);
    normalizeMinMax(src.data(), dst.data(), 5);
    for (uint8_t v : dst)
        EXPECT_EQ(v, 0);
}

TEST(Histogram, CountsSumToPixelCount)
{
    auto src = gradient(16, 16);
    uint32_t hist[256];
    histogram256(src.data(), src.size(), hist);
    uint64_t total = 0;
    for (uint32_t h : hist)
        total += h;
    EXPECT_EQ(total, src.size());
}

TEST(AbsdiffInvert, BasicIdentities)
{
    std::vector<uint8_t> a = {10, 250}, b = {30, 100}, dst(2);
    absdiff(a.data(), b.data(), dst.data(), 2);
    EXPECT_EQ(dst[0], 20);
    EXPECT_EQ(dst[1], 150);
    invert(a.data(), dst.data(), 2);
    EXPECT_EQ(dst[0], 245);
    EXPECT_EQ(dst[1], 5);
}

TEST(ConvFilter, IdentityKernel)
{
    auto src = gradient(10, 10, 3);
    std::vector<uint8_t> dst(src.size());
    const float k[9] = {0, 0, 0, 0, 1, 0, 0, 0, 0};
    convFilter3x3(src.data(), dst.data(), 10, 10, 3, k);
    EXPECT_EQ(src, dst);
}

} // namespace
} // namespace freepart::fw::ops
