/**
 * @file
 * Tests for the cluster layer: HashRing placement (uniformity,
 * bounded movement, determinism), per-shard object-id namespacing,
 * ShardRouter routing (migration, proxying, replica failover,
 * at-least-once dedup, drain/kill), and the adaptive batching-depth
 * controller in the runtime hot path.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/runtime.hh"
#include "shard/hash_ring.hh"
#include "shard/shard_router.hh"

namespace freepart::shard {
namespace {

// ---- HashRing --------------------------------------------------------

std::vector<uint64_t>
probeKeys(size_t n)
{
    std::vector<uint64_t> keys;
    keys.reserve(n);
    for (size_t i = 0; i < n; ++i)
        keys.push_back(0xabc000 + i * 7);
    return keys;
}

TEST(HashRing, ChiSquareUniformity)
{
    HashRing ring(64);
    for (uint32_t s = 0; s < 4; ++s)
        ring.addShard(s);

    std::map<uint32_t, size_t> counts;
    std::vector<uint64_t> keys = probeKeys(1000);
    for (uint64_t key : keys)
        counts[ring.ownerOf(key)]++;

    ASSERT_EQ(counts.size(), 4u); // every shard owns something
    double expected = static_cast<double>(keys.size()) / 4.0;
    double chi2 = 0.0;
    for (auto &[shard, count] : counts) {
        double diff = static_cast<double>(count) - expected;
        chi2 += diff * diff / expected;
    }
    // df=3; a fair placement lands well under 30 while a broken ring
    // (one shard owning half the keyspace) scores in the hundreds.
    EXPECT_LT(chi2, 30.0) << "chi2=" << chi2;
}

TEST(HashRing, RemovalMovesOnlyTheRemovedShardsKeys)
{
    HashRing before(64);
    for (uint32_t s = 0; s < 4; ++s)
        before.addShard(s);
    HashRing after = before;
    after.removeShard(2);

    std::vector<uint64_t> keys = probeKeys(1000);
    size_t owned = 0;
    for (uint64_t key : keys) {
        uint32_t prev = before.ownerOf(key);
        uint32_t next = after.ownerOf(key);
        EXPECT_NE(next, 2u);
        if (prev == 2) {
            ++owned;
        } else {
            // Bounded movement: a surviving shard's keys never move.
            EXPECT_EQ(next, prev);
        }
    }
    double moved = HashRing::remappedFraction(before, after, keys);
    EXPECT_DOUBLE_EQ(moved,
                     static_cast<double>(owned) / keys.size());
    // ~K/N with vnode smoothing; well under half, above zero.
    EXPECT_GT(moved, 0.10);
    EXPECT_LT(moved, 0.40);
}

TEST(HashRing, AdditionMovesKeysOnlyToTheNewShard)
{
    HashRing before(64);
    for (uint32_t s = 0; s < 4; ++s)
        before.addShard(s);
    HashRing after = before;
    after.addShard(9);

    for (uint64_t key : probeKeys(1000)) {
        uint32_t prev = before.ownerOf(key);
        uint32_t next = after.ownerOf(key);
        if (next != prev) {
            EXPECT_EQ(next, 9u);
        }
    }
}

TEST(HashRing, DeterministicAcrossConstructionAndChurn)
{
    HashRing a(32), b(32);
    for (uint32_t s = 0; s < 5; ++s) {
        a.addShard(s);
        b.addShard(s);
    }
    std::vector<uint64_t> keys = probeKeys(500);
    for (uint64_t key : keys)
        EXPECT_EQ(a.ownerOf(key), b.ownerOf(key));

    // Remove + re-add restores the exact original placement: vnode
    // points are a pure function of (shard, vnode), not history.
    b.removeShard(3);
    b.addShard(3);
    for (uint64_t key : keys)
        EXPECT_EQ(a.ownerOf(key), b.ownerOf(key));
}

TEST(HashRing, EmptyRingHasNoOwner)
{
    HashRing ring;
    EXPECT_EQ(ring.ownerOf(42), kInvalidShard);
    ring.addShard(7);
    EXPECT_EQ(ring.ownerOf(42), 7u);
    ring.removeShard(7);
    EXPECT_EQ(ring.ownerOf(42), kInvalidShard);
}

// ---- Object-id namespacing ------------------------------------------

struct Env {
    Env() : registry(fw::buildFullRegistry()), categorizer(registry)
    {
        cats = categorizer.categorizeAll();
    }

    std::unique_ptr<core::FreePartRuntime>
    makeRuntime(osim::Kernel &kernel, core::RuntimeConfig config = {})
    {
        fw::seedFixtureFiles(kernel);
        return std::make_unique<core::FreePartRuntime>(
            kernel, registry, cats,
            core::PartitionPlan::freePartDefault(), config);
    }

    std::unique_ptr<ShardRouter>
    makeRouter(uint32_t shard_count)
    {
        ShardRouterConfig config;
        config.shardCount = shard_count;
        return makeRouter(std::move(config));
    }

    std::unique_ptr<ShardRouter>
    makeRouter(ShardRouterConfig config)
    {
        return std::make_unique<ShardRouter>(
            registry, cats, core::PartitionPlan::freePartDefault(),
            std::move(config),
            [](osim::Kernel &kernel) { fw::seedFixtureFiles(kernel); });
    }

    fw::ApiRegistry registry;
    analysis::HybridCategorizer categorizer;
    analysis::Categorization cats;
};

Env &
env()
{
    static Env instance;
    return instance;
}

TEST(ObjectIdNamespace, ExplicitShardIdsMintDisjointIds)
{
    osim::Kernel k1, k2;
    core::RuntimeConfig c1, c2;
    c1.shardId = 1;
    c2.shardId = 2;
    auto r1 = env().makeRuntime(k1, c1);
    auto r2 = env().makeRuntime(k2, c2);

    uint64_t id1 = r1->createHostMat(8, 8, 1, 11, "a");
    uint64_t id2 = r2->createHostMat(8, 8, 1, 11, "b");
    EXPECT_NE(id1, id2);
    EXPECT_EQ(fw::shardOfObjectId(id1), 1u);
    EXPECT_EQ(fw::shardOfObjectId(id2), 2u);
    EXPECT_EQ(fw::objectIdIndex(id1), fw::objectIdIndex(id2));
    EXPECT_EQ(r1->shardId(), 1u);
}

TEST(ObjectIdNamespace, AutoShardIdsAreProcessUnique)
{
    osim::Kernel k1, k2;
    auto r1 = env().makeRuntime(k1);
    auto r2 = env().makeRuntime(k2);
    // The latent bug this guards against: both counters starting at 0
    // and minting identical ids.
    EXPECT_NE(r1->shardId(), r2->shardId());
    uint64_t id1 = r1->createHostMat(8, 8, 1, 3, "a");
    uint64_t id2 = r2->createHostMat(8, 8, 1, 3, "b");
    EXPECT_NE(id1, id2);
}

// ---- ShardRouter -----------------------------------------------------

/** First routing key (from base) owned by the given shard. */
uint64_t
keyOwnedBy(const ShardRouter &router, uint32_t shard,
           uint64_t base = 1000)
{
    for (uint64_t key = base; key < base + 100000; ++key)
        if (router.ownerShardOf(key) == shard)
            return key;
    ADD_FAILURE() << "no key found for shard " << shard;
    return 0;
}

TEST(ShardRouter, RoutesByKeyAndExecutes)
{
    auto router = env().makeRouter(2u);
    uint64_t k0 = keyOwnedBy(*router, 0);
    uint64_t k1 = keyOwnedBy(*router, 1);

    RoutedCall a = router->invoke(
        k0, "cv2.imread", {ipc::Value(std::string("/data/test.fpim"))});
    RoutedCall b = router->invoke(
        k1, "cv2.imread", {ipc::Value(std::string("/data/test.fpim"))});
    ASSERT_TRUE(a.result.ok) << a.result.error;
    ASSERT_TRUE(b.result.ok) << b.result.error;
    EXPECT_EQ(a.shard, 0u);
    EXPECT_EQ(b.shard, 1u);

    // Results are tracked in the cluster directory, ids namespaced.
    uint64_t ida = a.result.values[0].asRef().objectId;
    uint64_t idb = b.result.values[0].asRef().objectId;
    EXPECT_EQ(router->homeShardOf(ida), 0u);
    EXPECT_EQ(router->homeShardOf(idb), 1u);
    EXPECT_NE(fw::shardOfObjectId(ida), fw::shardOfObjectId(idb));

    const ClusterStats &stats = router->stats();
    EXPECT_EQ(stats.callsOk, 2u);
    EXPECT_EQ(stats.callsPerShard[0], 1u);
    EXPECT_EQ(stats.callsPerShard[1], 1u);
    EXPECT_GT(stats.makespan, 0u);
}

TEST(ShardRouter, MigratesSmallCrossShardInput)
{
    auto router = env().makeRouter(2u);
    uint64_t k0 = keyOwnedBy(*router, 0);
    uint64_t k1 = keyOwnedBy(*router, 1);

    uint64_t id = router->createMat(k0, 16, 16, 3, 5, "img");
    ASSERT_EQ(router->homeShardOf(id), 0u);

    // Routing key owned by shard 1, input on shard 0, object small:
    // the object migrates to the executing shard.
    RoutedCall call = router->invoke(
        k1, "cv2.GaussianBlur", {ipc::Value(ipc::ObjectRef{0, id})});
    ASSERT_TRUE(call.result.ok) << call.result.error;
    EXPECT_EQ(call.shard, 1u);
    EXPECT_FALSE(call.proxied);
    EXPECT_EQ(router->homeShardOf(id), 1u);

    const ClusterStats &stats = router->stats();
    EXPECT_EQ(stats.migrations, 1u);
    EXPECT_GT(stats.migratedBytes, 0u);
    // The source runtime evicted its copy: exactly one authority.
    EXPECT_FALSE(router->runtime(0).hasObject(id));
    EXPECT_TRUE(router->runtime(1).hasObject(id));
}

TEST(ShardRouter, ProxiesLargeCrossShardInput)
{
    ShardRouterConfig config;
    config.shardCount = 2;
    config.migrationMaxBytes = 256; // anything real exceeds this
    auto router = env().makeRouter(std::move(config));
    uint64_t k0 = keyOwnedBy(*router, 0);
    uint64_t k1 = keyOwnedBy(*router, 1);

    uint64_t id = router->createMat(k0, 32, 32, 3, 5, "big");
    RoutedCall call = router->invoke(
        k1, "cv2.erode", {ipc::Value(ipc::ObjectRef{0, id})});
    ASSERT_TRUE(call.result.ok) << call.result.error;
    // The call went to the data, not the data to the call.
    EXPECT_TRUE(call.proxied);
    EXPECT_EQ(call.shard, 0u);
    EXPECT_EQ(router->homeShardOf(id), 0u);
    EXPECT_EQ(router->stats().migrations, 0u);
    EXPECT_EQ(router->stats().proxiedCalls, 1u);
}

TEST(ShardRouter, KilledShardFailsOverToReplica)
{
    auto router = env().makeRouter(4u);
    uint64_t key = keyOwnedBy(*router, 2);
    uint64_t id = router->createMat(key, 16, 16, 3, 7, "precious");
    ASSERT_EQ(router->homeShardOf(id), 2u);

    router->killShard(2);
    EXPECT_FALSE(router->shardLive(2));
    EXPECT_EQ(router->liveShardCount(), 3u);
    uint32_t newOwner = router->ownerShardOf(key);
    EXPECT_NE(newOwner, 2u);

    // The key remapped and the input is rebuilt from its replica.
    RoutedCall call = router->invoke(
        key, "cv2.dilate", {ipc::Value(ipc::ObjectRef{0, id})},
        /*dedup_token=*/77);
    ASSERT_TRUE(call.result.ok) << call.result.error;
    EXPECT_EQ(call.shard, newOwner);
    EXPECT_GE(router->stats().replicaRestores, 1u);

    // At-least-once: resubmitting the acknowledged token is answered
    // from the cluster dedup cache, not re-executed.
    RoutedCall again = router->invoke(
        key, "cv2.dilate", {ipc::Value(ipc::ObjectRef{0, id})},
        /*dedup_token=*/77);
    ASSERT_TRUE(again.result.ok);
    EXPECT_TRUE(again.deduped);
    EXPECT_EQ(again.result.values.size(), call.result.values.size());
    EXPECT_EQ(router->stats().dedupHits, 1u);
}

TEST(ShardRouter, LostObjectWithoutReplicaFailsTyped)
{
    ShardRouterConfig config;
    config.shardCount = 2;
    config.replicateObjects = false;
    auto router = env().makeRouter(std::move(config));
    uint64_t k0 = keyOwnedBy(*router, 0);
    uint64_t k1 = keyOwnedBy(*router, 1);

    uint64_t id = router->createMat(k0, 16, 16, 3, 7, "doomed");
    router->killShard(0);
    RoutedCall call = router->invoke(
        k1, "cv2.flip", {ipc::Value(ipc::ObjectRef{0, id})});
    EXPECT_FALSE(call.result.ok);
    EXPECT_NE(call.result.error.find("lost"), std::string::npos);
    EXPECT_EQ(router->stats().lostObjects, 1u);
}

TEST(ShardRouter, DrainedShardLeavesRingButServesMigrations)
{
    auto router = env().makeRouter(3u);
    uint64_t key = keyOwnedBy(*router, 1);
    uint64_t id = router->createMat(key, 16, 16, 3, 9, "mov");

    router->drainShard(1);
    EXPECT_TRUE(router->shardLive(1)); // up, just not taking keys
    EXPECT_EQ(router->liveShardCount(), 2u);
    for (uint64_t probe = 0; probe < 200; ++probe)
        EXPECT_NE(router->ownerShardOf(probe), 1u);

    // A call referencing its object migrates it off the draining
    // shard (live source) rather than resorting to the replica.
    RoutedCall call = router->invoke(
        key, "cv2.normalize", {ipc::Value(ipc::ObjectRef{0, id})});
    ASSERT_TRUE(call.result.ok) << call.result.error;
    EXPECT_NE(call.shard, 1u);
    EXPECT_GE(router->stats().migrations, 1u);
    EXPECT_EQ(router->stats().replicaRestores, 0u);
    EXPECT_EQ(router->homeShardOf(id), call.shard);
}

TEST(ShardRouter, AddShardJoinsRingAndPushesRemappedObjects)
{
    auto router = env().makeRouter(2u);
    // Spread objects across many routing keys so some of them are
    // bound to remap onto the joiner.
    std::vector<std::pair<uint64_t, uint64_t>> objects; // key, id
    for (uint64_t key = 2000; key < 2032; ++key)
        objects.emplace_back(
            key, router->createMat(key, 8, 8, 1, key, "obj"));

    uint32_t joiner = router->addShard(
        [](osim::Kernel &kernel) { fw::seedFixtureFiles(kernel); });
    EXPECT_EQ(joiner, 2u);
    EXPECT_EQ(router->shardCount(), 3u);
    EXPECT_EQ(router->liveShardCount(), 3u);

    const ClusterStats &stats = router->stats();
    EXPECT_EQ(stats.shardsJoined, 1u);
    EXPECT_GT(stats.proactivePushes, 0u);
    EXPECT_GT(stats.proactivePushBytes, 0u);
    // Every object whose key now maps to the joiner moved there, and
    // exactly one shard stays authoritative for each.
    for (auto &[key, id] : objects) {
        uint32_t owner = router->ownerShardOf(key);
        EXPECT_EQ(router->homeShardOf(id), owner);
        if (owner == joiner) {
            EXPECT_TRUE(router->runtime(joiner).hasObject(id));
            EXPECT_FALSE(router->runtime(0).hasObject(id));
            EXPECT_FALSE(router->runtime(1).hasObject(id));
        }
    }
    // The joiner serves calls on its keys without a migration stall.
    uint64_t joiner_key = keyOwnedBy(*router, joiner, 2000);
    RoutedCall call = router->invoke(
        joiner_key, "cv2.imread",
        {ipc::Value(std::string("/data/test.fpim"))});
    ASSERT_TRUE(call.result.ok) << call.result.error;
    EXPECT_EQ(call.shard, joiner);
}

TEST(ShardRouter, AddShardSkipsObjectsAboveMigrationLimit)
{
    ShardRouterConfig config;
    config.shardCount = 2;
    config.migrationMaxBytes = 64; // every real Mat exceeds this
    auto router = env().makeRouter(std::move(config));
    for (uint64_t key = 3000; key < 3016; ++key)
        router->createMat(key, 16, 16, 3, key, "big");
    router->addShard(
        [](osim::Kernel &kernel) { fw::seedFixtureFiles(kernel); });
    const ClusterStats &stats = router->stats();
    EXPECT_EQ(stats.shardsJoined, 1u);
    // Oversized objects stay put: they migrate lazily on first touch
    // (or draw the call to themselves via the proxy path).
    EXPECT_EQ(stats.proactivePushes, 0u);
}

TEST(ShardRouter, AsyncPerShardOverlapsAndMatchesResults)
{
    // The same two-session trace, serialized vs async-per-shard: the
    // async run must produce identical object contents and strictly
    // more overlap (a smaller cluster makespan).
    auto run = [&](bool async) {
        ShardRouterConfig config;
        config.shardCount = 2;
        config.runtime.pipelineParallel = async;
        auto router = env().makeRouter(std::move(config));
        std::vector<uint64_t> keys = {keyOwnedBy(*router, 0),
                                      keyOwnedBy(*router, 1)};
        std::vector<ipc::Value> chain(2);
        for (int step = 0; step < 6; ++step) {
            for (size_t s = 0; s < keys.size(); ++s) {
                RoutedCall call =
                    step == 0
                        ? router->invoke(
                              keys[s], "cv2.imread",
                              {ipc::Value(
                                  std::string("/data/test.fpim"))})
                        : router->invoke(keys[s], "cv2.GaussianBlur",
                                         {chain[s]});
                EXPECT_TRUE(call.result.ok) << call.result.error;
                chain[s] = call.result.values[0];
            }
        }
        router->drainAll();
        ClusterStats stats = router->stats();
        std::vector<std::vector<uint8_t>> bytes;
        for (size_t s = 0; s < keys.size(); ++s) {
            uint64_t id = chain[s].asRef().objectId;
            uint32_t home = router->homeShardOf(id);
            core::FreePartRuntime &rt = router->runtime(home);
            bytes.push_back(rt.storeOf(rt.homeOf(id)).serialize(id));
        }
        return std::make_pair(stats, bytes);
    };
    auto [sync_stats, sync_bytes] = run(false);
    auto [async_stats, async_bytes] = run(true);
    EXPECT_EQ(sync_bytes, async_bytes);
    EXPECT_EQ(sync_stats.shardTotals.asyncCalls, 0u);
    EXPECT_GT(async_stats.shardTotals.asyncCalls, 0u);
    EXPECT_LE(async_stats.makespan, sync_stats.makespan);
}

// ---- Adaptive batching depth controller ------------------------------

/** Ping-pong a Mat between the processing and storing partitions:
 *  every call carries a cross-partition ref, so each request batch
 *  hauls a Deliver payload and the request ring shows occupancy. */
uint64_t
pingPongWorkload(core::FreePartRuntime &runtime, size_t rounds)
{
    core::ApiResult img = runtime.invoke(
        "cv2.imread", {ipc::Value(std::string("/data/test.fpim"))});
    EXPECT_TRUE(img.ok) << img.error;
    ipc::Value ref = img.values[0];
    for (size_t i = 0; i < rounds; ++i) {
        core::ApiResult blurred =
            runtime.invoke("cv2.GaussianBlur", {ref});
        EXPECT_TRUE(blurred.ok) << blurred.error;
        ref = blurred.values[0];
        core::ApiResult stored = runtime.invoke(
            "cv2.imwrite",
            {ipc::Value(std::string("/out/pp.fpim")), ref});
        EXPECT_TRUE(stored.ok) << stored.error;
    }
    return ref.asRef().objectId;
}

TEST(AdaptiveBatching, WidensHotWindowUnderPressure)
{
    core::RuntimeConfig base;
    base.ringBytes = 64 << 10; // small ring: delivers show occupancy
    core::RuntimeConfig adaptive = base;
    adaptive.adaptiveBatching = true;

    osim::Kernel k1;
    auto baseline = env().makeRuntime(k1, base);
    pingPongWorkload(*baseline, 24);

    osim::Kernel k2;
    auto adapted = env().makeRuntime(k2, adaptive);
    pingPongWorkload(*adapted, 24);

    // Off: binary same-partition heuristic, depth stays 1 and the
    // alternating workload never goes hot.
    EXPECT_EQ(baseline->hotWindowDepth(), 1u);
    EXPECT_EQ(baseline->stats().hotWindowGrows, 0u);

    // On: pressure doubles the window, both partitions stay hot.
    EXPECT_GT(adapted->hotWindowDepth(), 1u);
    EXPECT_GT(adapted->stats().hotWindowGrows, 0u);
    EXPECT_GT(adapted->stats().hotSends,
              baseline->stats().hotSends);
    EXPECT_LT(adapted->stats().elapsed(),
              baseline->stats().elapsed());
    EXPECT_GE(adapted->stats().hotWindowDepthPeak, 2u);
}

TEST(AdaptiveBatching, DecaysOnIdleTraffic)
{
    core::RuntimeConfig config;
    config.adaptiveBatching = true;
    config.ringBytes = 64 << 10;

    osim::Kernel kernel;
    auto runtime = env().makeRuntime(kernel, config);
    pingPongWorkload(*runtime, 16);
    ASSERT_GT(runtime->hotWindowDepth(), 1u);

    // Same-partition no-deliver traffic: occupancy falls below the
    // decay threshold and the window narrows back toward 1.
    core::ApiResult img = runtime->invoke(
        "cv2.imread", {ipc::Value(std::string("/data/test.fpim"))});
    ASSERT_TRUE(img.ok);
    for (size_t i = 0; i < 40; ++i) {
        core::ApiResult r = runtime->invoke(
            "cv2.imread", {ipc::Value(std::string("/data/test.fpim"))});
        ASSERT_TRUE(r.ok) << r.error;
    }
    EXPECT_GT(runtime->stats().hotWindowDecays, 0u);
    EXPECT_EQ(runtime->hotWindowDepth(), 1u);
}

} // namespace
} // namespace freepart::shard
