/**
 * @file
 * Tests for the design-study datasets: the 56-app census must
 * reproduce Table 3's aggregates exactly, every app must follow the
 * Fig. 6 pipeline, and the CVE census must sum to the reported
 * per-framework totals (241 CVEs).
 */

#include <gtest/gtest.h>

#include "apps/studies.hh"

namespace freepart::apps {
namespace {

using fw::ApiType;

TEST(Study1, FiftySixApps)
{
    EXPECT_EQ(studyApps().size(), 56u);
}

TEST(Study1, AllAppsFollowPipelinePattern)
{
    // §4.1: "all the analyzed applications follow the data loading,
    // data processing, and visualizing or storing workflow."
    for (const StudyApp &app : studyApps())
        EXPECT_TRUE(followsPipelinePattern(app)) << app.id;
}

TEST(Study1, EveryAppHasASink)
{
    for (const StudyApp &app : studyApps())
        EXPECT_TRUE(app.hasVisualizing || app.hasStoring) << app.id;
}

TEST(Study1, Table3PerFrameworkAggregates)
{
    auto usage = computeVulnUsage();
    auto cell = [&](StudyFramework fw, ApiType type) {
        return usage.at({fw, type});
    };

    // OpenCV row: 0.6/1/1 loading, 0.2/1/1 processing.
    EXPECT_NEAR(cell(StudyFramework::OpenCV, ApiType::Loading).avg,
                0.6, 0.05);
    EXPECT_EQ(cell(StudyFramework::OpenCV, ApiType::Loading).max, 1u);
    EXPECT_EQ(cell(StudyFramework::OpenCV, ApiType::Loading).total,
              1u);
    EXPECT_NEAR(
        cell(StudyFramework::OpenCV, ApiType::Processing).avg, 0.2,
        0.05);

    // TensorFlow row: 0.3/2/2 loading, 2.3/12/24 processing.
    EXPECT_NEAR(
        cell(StudyFramework::TensorFlow, ApiType::Loading).avg, 0.3,
        0.05);
    EXPECT_EQ(cell(StudyFramework::TensorFlow, ApiType::Loading).max,
              2u);
    EXPECT_EQ(
        cell(StudyFramework::TensorFlow, ApiType::Loading).total, 2u);
    EXPECT_NEAR(
        cell(StudyFramework::TensorFlow, ApiType::Processing).avg,
        2.3, 0.05);
    EXPECT_EQ(
        cell(StudyFramework::TensorFlow, ApiType::Processing).max,
        12u);
    EXPECT_EQ(
        cell(StudyFramework::TensorFlow, ApiType::Processing).total,
        24u);

    // Pillow row: 0.4/2/2 loading, 0.5/1/1 visualizing.
    EXPECT_NEAR(cell(StudyFramework::Pillow, ApiType::Loading).avg,
                0.4, 0.05);
    EXPECT_EQ(cell(StudyFramework::Pillow, ApiType::Loading).total,
              2u);
    EXPECT_NEAR(
        cell(StudyFramework::Pillow, ApiType::Visualizing).avg, 0.5,
        0.05);

    // NumPy row: 0.1/1/1 loading, 0.4/1/1 processing.
    EXPECT_NEAR(cell(StudyFramework::NumPy, ApiType::Loading).avg,
                0.1, 0.05);
    EXPECT_NEAR(cell(StudyFramework::NumPy, ApiType::Processing).avg,
                0.4, 0.05);

    // No storing-type vulnerable APIs anywhere.
    for (size_t f = 0; f < kNumStudyFrameworks; ++f)
        EXPECT_EQ(cell(static_cast<StudyFramework>(f),
                       ApiType::Storing)
                      .total,
                  0u);
}

TEST(Study1, Table3TotalsRow)
{
    auto totals = computeVulnUsageTotals();
    // Loading: 1.4 / 5 / 6.
    EXPECT_NEAR(totals[0].avg, 1.4, 0.05);
    EXPECT_EQ(totals[0].max, 5u);
    EXPECT_EQ(totals[0].total, 6u);
    // Processing: 2.9 / 14 / 26.
    EXPECT_NEAR(totals[1].avg, 2.9, 0.05);
    EXPECT_EQ(totals[1].max, 14u);
    EXPECT_EQ(totals[1].total, 26u);
    // Visualizing: 0.5 / 1 / 1.
    EXPECT_NEAR(totals[2].avg, 0.5, 0.05);
    EXPECT_EQ(totals[2].max, 1u);
    EXPECT_EQ(totals[2].total, 1u);
    // Storing: all zero.
    EXPECT_EQ(totals[3].total, 0u);
}

TEST(Study2, TwoHundredFortyOneCves)
{
    uint32_t total = 0;
    for (const CveBucket &bucket : cveStudyBuckets())
        total += bucket.count;
    EXPECT_EQ(total, 241u);
}

TEST(Study2, PerFrameworkTotalsMatchPaper)
{
    auto totals = cveTotalsByFramework();
    EXPECT_EQ(totals[StudyFramework::TensorFlow], 172u);
    EXPECT_EQ(totals[StudyFramework::Pillow], 44u);
    EXPECT_EQ(totals[StudyFramework::OpenCV], 22u);
    EXPECT_EQ(totals[StudyFramework::NumPy], 3u);
}

TEST(Study2, LoadingAndProcessingDominate)
{
    // Fig. 7: "the majority of them are in the data loading and data
    // processing APIs."
    auto totals = cveTotalsByType();
    uint32_t major = totals[ApiType::Loading] +
                     totals[ApiType::Processing];
    uint32_t minor = totals[ApiType::Storing] +
                     totals[ApiType::Visualizing];
    EXPECT_GT(major, 200u);
    EXPECT_LT(minor, 30u);
}

TEST(Study2, VulnerabilitiesExistAcrossAllTypes)
{
    // §4.1: "vulnerabilities are all across the four types of APIs."
    auto totals = cveTotalsByType();
    EXPECT_GT(totals[ApiType::Loading], 0u);
    EXPECT_GT(totals[ApiType::Processing], 0u);
    EXPECT_GT(totals[ApiType::Visualizing], 0u);
    EXPECT_GT(totals[ApiType::Storing], 0u);
}

TEST(StatefulCensusTest, A24Breakdown)
{
    StatefulCensus census = statefulCensus();
    EXPECT_EQ(census.total(), 1841u);
    EXPECT_EQ(census.dataProcessing, 1056u);
}

TEST(StudyNames, Render)
{
    EXPECT_STREQ(studyFrameworkName(StudyFramework::OpenCV),
                 "OpenCV");
    EXPECT_STREQ(vulnClassName(VulnClass::DenialOfService),
                 "DoS (Denial of Service)");
}

} // namespace
} // namespace freepart::apps
