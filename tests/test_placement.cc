/**
 * @file
 * Tests for load-aware object placement: TraceCollector memory
 * bounds, hypergraph partitioner quality/balance/determinism, the
 * placement-override table layered on the HashRing (overrides survive
 * shard kill and re-apply on revive), bounded per-epoch migration,
 * and the Hash policy remaining a byte-identical no-op.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/runtime.hh"
#include "shard/placement.hh"
#include "shard/shard_router.hh"
#include "util/rng.hh"

namespace freepart::shard {
namespace {

// ---- TraceCollector --------------------------------------------------

placement::ObjectAccess
access(uint64_t id, uint64_t group, uint64_t bytes)
{
    placement::ObjectAccess a;
    a.objectId = id;
    a.group = group;
    a.bytes = bytes;
    return a;
}

TEST(TraceCollector, RecordsCallsAndContracts)
{
    placement::TraceCollector trace;
    EXPECT_TRUE(trace.empty());

    // Two groups whose objects are co-accessed by one call each, plus
    // a call spanning both groups.
    trace.recordCall(10, {access(1, 10, 2048)});
    trace.recordCall(20, {access(2, 20, 2048)});
    trace.recordCall(10, {access(1, 10, 2048), access(2, 20, 2048)});
    EXPECT_EQ(trace.calls(), 3u);
    EXPECT_EQ(trace.objectCount(), 2u);

    placement::GroupHypergraph h = trace.contractByGroup();
    ASSERT_EQ(h.vertices.size(), 2u);
    // Group weight = its calls + KiB-scaled access mass of its
    // objects, so both groups weigh more than their call count alone.
    for (const auto &v : h.vertices)
        EXPECT_GT(v.weight, 1u);
    // The cross-group call produced exactly one 2-pin edge.
    ASSERT_EQ(h.edges.size(), 1u);
    EXPECT_EQ(h.edges[0].pins.size(), 2u);

    EXPECT_EQ(trace.objectsOf(10), std::vector<uint64_t>{1});
    trace.reset();
    EXPECT_TRUE(trace.empty());
    EXPECT_EQ(trace.contractByGroup().vertices.size(), 0u);
}

TEST(TraceCollector, BoundedMemory)
{
    placement::TraceConfig config;
    config.maxObjects = 8;
    config.maxEdges = 4;
    config.maxPinsPerEdge = 3;
    placement::TraceCollector trace(config);

    // 32 distinct objects across 32 groups: only 8 recorded
    // individually, the rest still add weight to their group.
    for (uint64_t i = 0; i < 32; ++i)
        trace.recordCall(100 + i, {access(1000 + i, 100 + i, 4096)});
    EXPECT_EQ(trace.objectCount(), 8u);
    placement::GroupHypergraph h = trace.contractByGroup();
    EXPECT_EQ(h.vertices.size(), 32u); // groups are always tracked

    // Distinct pin sets beyond maxEdges evict the lightest edge.
    for (uint64_t i = 0; i < 6; ++i)
        trace.recordCall(100 + i, {access(1000 + i, 100 + i, 64),
                                   access(1000 + i + 8,
                                          100 + i + 8, 64)});
    EXPECT_LE(trace.edgeCount(), 4u);
    EXPECT_GT(trace.edgeEvictions(), 0u);

    // A wide call keeps only maxPinsPerEdge pins.
    std::vector<placement::ObjectAccess> wide;
    for (uint64_t i = 0; i < 6; ++i)
        wide.push_back(access(2000 + i, 200 + i, 64));
    trace.recordCall(200, wide);
    h = trace.contractByGroup();
    for (const auto &e : h.edges)
        EXPECT_LE(e.pins.size(), 3u);
}

// ---- Partitioner -----------------------------------------------------

/** Two 3-group communities with heavy internal co-access and one
 *  light cross edge: the classic should-not-be-cut instance. */
placement::GroupHypergraph
communityGraph()
{
    placement::GroupHypergraph h;
    for (uint64_t g = 0; g < 6; ++g)
        h.vertices.push_back({100 + g, 10});
    auto edge = [&](std::vector<uint32_t> pins, uint64_t w) {
        placement::GroupHypergraph::Edge e;
        e.pins = std::move(pins);
        e.weight = w;
        h.edges.push_back(std::move(e));
    };
    edge({0, 1}, 20);
    edge({1, 2}, 20);
    edge({0, 2}, 20);
    edge({3, 4}, 20);
    edge({4, 5}, 20);
    edge({3, 5}, 20);
    edge({2, 3}, 1); // the only edge worth cutting
    return h;
}

TEST(Partitioner, CutsTheLightEdgeNotTheCommunities)
{
    placement::PartitionConfig config;
    config.parts = 2;
    placement::PartitionResult r =
        placement::partitionGroups(communityGraph(), config);

    EXPECT_EQ(r.cut, 1u); // only the weight-1 bridge is cut
    EXPECT_LE(r.imbalance, 1.0 + 1e-9);
    // Communities stay whole.
    EXPECT_EQ(r.groupPart.at(100), r.groupPart.at(101));
    EXPECT_EQ(r.groupPart.at(101), r.groupPart.at(102));
    EXPECT_EQ(r.groupPart.at(103), r.groupPart.at(104));
    EXPECT_EQ(r.groupPart.at(104), r.groupPart.at(105));
    EXPECT_NE(r.groupPart.at(100), r.groupPart.at(103));
}

TEST(Partitioner, RespectsBalanceConstraint)
{
    placement::GroupHypergraph h;
    // 16 equal groups, one heavy hub connected to everything: the
    // refiner must not pile neighbors onto the hub's part.
    for (uint64_t g = 0; g < 16; ++g)
        h.vertices.push_back({g, g == 0 ? 40u : 10u});
    for (uint32_t g = 1; g < 16; ++g) {
        placement::GroupHypergraph::Edge e;
        e.pins = {0, g};
        e.weight = 5;
        h.edges.push_back(std::move(e));
    }
    placement::PartitionConfig config;
    config.parts = 4;
    config.balanceEpsilon = 0.10;
    placement::PartitionResult r =
        placement::partitionGroups(h, config);

    uint64_t total = 0, heaviest = 0;
    for (const auto &v : h.vertices)
        total += v.weight;
    for (uint64_t w : r.partWeight)
        heaviest = std::max(heaviest, w);
    uint64_t maxPart = std::max<uint64_t>(
        40, static_cast<uint64_t>(1.10 * total / 4.0) + 1);
    EXPECT_LE(heaviest, maxPart);
    for (uint32_t p = 0; p < 4; ++p)
        EXPECT_GT(r.partWeight[p], 0u) << "empty part " << p;
}

TEST(Partitioner, DeterministicForFixedSeedAndTrace)
{
    // A noisy random hypergraph, partitioned twice with the same
    // seed: identical assignment, cut, and weights.
    util::Rng rng(7);
    placement::GroupHypergraph h;
    for (uint64_t g = 0; g < 40; ++g)
        h.vertices.push_back({g, 1 + rng.below(20)});
    for (int i = 0; i < 120; ++i) {
        placement::GroupHypergraph::Edge e;
        uint32_t a = static_cast<uint32_t>(rng.below(40));
        uint32_t b = static_cast<uint32_t>(rng.below(40));
        if (a == b)
            continue;
        e.pins = {std::min(a, b), std::max(a, b)};
        e.weight = 1 + rng.below(9);
        h.edges.push_back(std::move(e));
    }
    placement::PartitionConfig config;
    config.parts = 3;
    config.seed = 99;
    placement::PartitionResult r1 =
        placement::partitionGroups(h, config);
    placement::PartitionResult r2 =
        placement::partitionGroups(h, config);
    EXPECT_EQ(r1.groupPart, r2.groupPart);
    EXPECT_EQ(r1.cut, r2.cut);
    EXPECT_EQ(r1.partWeight, r2.partWeight);
    EXPECT_LE(r1.cut, r1.totalEdgeWeight);
}

// ---- Router integration ---------------------------------------------

struct Env {
    Env() : registry(fw::buildFullRegistry()), categorizer(registry)
    {
        cats = categorizer.categorizeAll();
    }

    std::unique_ptr<ShardRouter>
    makeRouter(ShardRouterConfig config)
    {
        return std::make_unique<ShardRouter>(
            registry, cats, core::PartitionPlan::freePartDefault(),
            std::move(config),
            [](osim::Kernel &kernel) { fw::seedFixtureFiles(kernel); });
    }

    fw::ApiRegistry registry;
    analysis::HybridCategorizer categorizer;
    analysis::Categorization cats;
};

Env &
env()
{
    static Env instance;
    return instance;
}

/** Drive a small chained workload over `keys` routing keys; each key
 *  loads an image and runs `ops` unary ops on its own chain. */
void
driveChains(ShardRouter &router, const std::vector<uint64_t> &keys,
            size_t ops)
{
    std::map<uint64_t, ipc::Value> chain;
    for (uint64_t key : keys) {
        RoutedCall load = router.invoke(
            key, "cv2.imread",
            {ipc::Value(std::string("/data/test.fpim"))});
        ASSERT_TRUE(load.result.ok) << load.result.error;
        chain[key] = load.result.values[0];
    }
    for (size_t i = 0; i < ops; ++i) {
        for (uint64_t key : keys) {
            RoutedCall call = router.invoke(
                key, "cv2.bitwise_not", {chain[key]});
            ASSERT_TRUE(call.result.ok) << call.result.error;
            chain[key] = call.result.values[0];
        }
    }
}

ShardRouterConfig
optimizedConfig(uint32_t shards)
{
    ShardRouterConfig config;
    config.shardCount = shards;
    config.placementPolicy = PlacementPolicy::Optimized;
    return config;
}

TEST(PlacementRouter, HashPolicyRecordsAndOverridesNothing)
{
    ShardRouterConfig config;
    config.shardCount = 4;
    auto router = env().makeRouter(std::move(config));
    driveChains(*router, {501, 502, 503, 504}, 3);

    EXPECT_TRUE(router->traceCollector().empty());
    EXPECT_TRUE(router->placementOverrides().empty());
    // Effective owner stays the raw ring owner for every probe key.
    for (uint64_t key = 1000; key < 1200; ++key)
        EXPECT_EQ(router->ownerShardOf(key),
                  router->ring().ownerOf(key));
    const ClusterStats &stats = router->stats();
    EXPECT_EQ(stats.repartitions, 0u);
    EXPECT_EQ(stats.placementMovedBytes, 0u);
}

TEST(PlacementRouter, RepartitionInstallsOverridesOverTheRing)
{
    auto router = env().makeRouter(optimizedConfig(4));
    std::vector<uint64_t> keys = {601, 602, 603, 604,
                                  605, 606, 607, 608};
    driveChains(*router, keys, 4);
    EXPECT_FALSE(router->traceCollector().empty());

    router->repartitionNow();
    const ClusterStats &stats = router->stats();
    EXPECT_EQ(stats.repartitions, 1u);
    // Every observed group is pinned (moved or held in place).
    EXPECT_EQ(router->placementOverrides().size(), keys.size());
    EXPECT_EQ(stats.placementOverrides, keys.size());
    // The window was consumed at the epoch boundary.
    EXPECT_TRUE(router->traceCollector().empty());

    // Calls keep landing on the overridden owners.
    for (uint64_t key : keys) {
        uint32_t owner = router->ownerShardOf(key);
        EXPECT_EQ(owner, router->placementOverrides().at(key));
        RoutedCall call = router->invoke(
            key, "cv2.imread",
            {ipc::Value(std::string("/data/test.fpim"))});
        ASSERT_TRUE(call.result.ok);
        EXPECT_EQ(call.shard, owner);
    }
}

TEST(PlacementRouter, OverridesSurviveKillAndReviveFreshIncarnation)
{
    auto router = env().makeRouter(optimizedConfig(4));
    std::vector<uint64_t> keys = {701, 702, 703, 704, 705, 706};
    driveChains(*router, keys, 4);
    router->repartitionNow();
    ASSERT_FALSE(router->placementOverrides().empty());

    auto [group, target] = *router->placementOverrides().begin();
    ASSERT_EQ(router->ownerShardOf(group), target);

    // Killed override target: the group falls back to the hash ring
    // (never routed at a dead shard) but the entry is kept.
    router->killShard(target);
    uint32_t fallback = router->ownerShardOf(group);
    EXPECT_NE(fallback, target);
    RoutedCall call = router->invoke(
        group, "cv2.imread",
        {ipc::Value(std::string("/data/test.fpim"))});
    ASSERT_TRUE(call.result.ok) << call.result.error;
    EXPECT_EQ(call.shard, fallback);
    EXPECT_EQ(router->placementOverrides().at(group), target);

    // Revive spins up a fresh incarnation of the same slot: the
    // override re-applies without recomputing a placement.
    router->reviveShard(target);
    EXPECT_EQ(router->ownerShardOf(group), target);
    RoutedCall back = router->invoke(
        group, "cv2.imread",
        {ipc::Value(std::string("/data/test.fpim"))});
    ASSERT_TRUE(back.result.ok) << back.result.error;
    EXPECT_EQ(back.shard, target);
}

TEST(PlacementRouter, RetireScrubsOverridesWhereKillKeepsThem)
{
    auto router = env().makeRouter(optimizedConfig(4));
    std::vector<uint64_t> keys = {721, 722, 723, 724, 725, 726};
    driveChains(*router, keys, 4);
    router->repartitionNow();
    ASSERT_FALSE(router->placementOverrides().empty());

    // Pick a pin that genuinely *moved* its group off the ring owner
    // (a held-in-place pin would legitimately re-land on the revived
    // slot via the ring, blurring the final assertion).
    uint64_t group = 0;
    uint32_t target = kInvalidShard;
    for (const auto &[key, shard] : router->placementOverrides()) {
        if (shard != router->ring().ownerOf(key)) {
            group = key;
            target = shard;
            break;
        }
    }
    ASSERT_NE(target, kInvalidShard) << "no moved pin in the epoch";
    ASSERT_EQ(router->ownerShardOf(group), target);
    size_t pinnedToTarget = 0;
    for (const auto &[key, shard] : router->placementOverrides())
        if (shard == target)
            ++pinnedToTarget;

    // Retirement is permanent scale-down, not host loss: the slot's
    // override entries are scrubbed (contrast killShard above, which
    // keeps them for the rebuilt host), and the group settles on its
    // ring fallback for good.
    ASSERT_TRUE(router->retireShard(target));
    EXPECT_EQ(router->placementOverrides().count(group), 0u);
    for (const auto &[key, shard] : router->placementOverrides())
        EXPECT_NE(shard, target);
    EXPECT_EQ(router->stats().overridesScrubbed, pinnedToTarget);

    uint32_t fallback = router->ownerShardOf(group);
    EXPECT_NE(fallback, target);
    RoutedCall call = router->invoke(
        group, "cv2.imread",
        {ipc::Value(std::string("/data/test.fpim"))});
    ASSERT_TRUE(call.result.ok) << call.result.error;
    EXPECT_EQ(call.shard, fallback);

    // A scale-up revive of the same slot must NOT resurrect the old
    // placement — the group stays where the retirement put it until
    // the next repartition epoch decides otherwise.
    router->reviveShard(target);
    EXPECT_EQ(router->ownerShardOf(group), fallback);
    EXPECT_EQ(router->placementOverrides().count(group), 0u);
}

TEST(PlacementRouter, RepartitionDeterministicForFixedSeedAndTrace)
{
    ShardRouterConfig ca = optimizedConfig(4);
    ca.placementSeed = 42;
    ShardRouterConfig cb = optimizedConfig(4);
    cb.placementSeed = 42;
    auto a = env().makeRouter(std::move(ca));
    auto b = env().makeRouter(std::move(cb));

    std::vector<uint64_t> keys = {801, 802, 803, 804,
                                  805, 806, 807, 808};
    driveChains(*a, keys, 5);
    driveChains(*b, keys, 5);
    a->repartitionNow();
    b->repartitionNow();

    EXPECT_EQ(a->placementOverrides(), b->placementOverrides());
    const ClusterStats &sa = a->stats();
    const ClusterStats &sb = b->stats();
    EXPECT_EQ(sa.placementCut, sb.placementCut);
    EXPECT_EQ(sa.placementMovedBytes, sb.placementMovedBytes);
    EXPECT_EQ(sa.placementMoves, sb.placementMoves);
}

TEST(PlacementRouter, EpochMovesNeverExceedMigrationBudget)
{
    ShardRouterConfig config = optimizedConfig(4);
    // Budget fits one ~12 KiB fixture mat per epoch but not two, so
    // a rebalance spanning several groups must defer.
    config.migrationMaxBytes = 16 << 10;
    auto router = env().makeRouter(std::move(config));

    std::vector<uint64_t> keys;
    for (uint64_t k = 0; k < 10; ++k)
        keys.push_back(901 + k);
    uint64_t lastPeak = 0;
    bool deferred = false;
    for (int epoch = 0; epoch < 4; ++epoch) {
        driveChains(*router, keys, 2);
        router->repartitionNow();
        const ClusterStats &stats = router->stats();
        EXPECT_LE(stats.placementEpochBytesPeak, 16u << 10)
            << "epoch " << epoch;
        EXPECT_GE(stats.placementEpochBytesPeak, lastPeak);
        lastPeak = stats.placementEpochBytesPeak;
        deferred = deferred || stats.placementDeferrals > 0;
    }
    const ClusterStats &stats = router->stats();
    EXPECT_EQ(stats.repartitions, 4u);
    // The budget actually bit at least once across the epochs.
    EXPECT_TRUE(deferred || stats.placementMovedBytes == 0);
}

TEST(PlacementRouter, RepartitionNeedsTwoLiveShards)
{
    auto router = env().makeRouter(optimizedConfig(1));
    driveChains(*router, {950, 951}, 2);
    router->repartitionNow();
    const ClusterStats &stats = router->stats();
    EXPECT_EQ(stats.repartitions, 0u);
    EXPECT_TRUE(router->placementOverrides().empty());
    // The window was still consumed: nothing to balance against.
    EXPECT_TRUE(router->traceCollector().empty());
}

} // namespace
} // namespace freepart::shard
