/**
 * @file
 * Tests for the multi-tenant serving subsystem: warm agent pooling
 * (checkout/release/reset accounting, background-spawn maturity,
 * target governance), the SLO-driven autoscaler (sustained-pressure
 * scale-up, blip hysteresis, cooldown, panic bypass, idle scale-down,
 * revive-before-grow), shard retirement semantics (evacuation, dedup
 * retention for ended sessions vs pruning for genuinely lost
 * objects), and the tenant traffic generator (determinism, session
 * accounting, zero acked calls lost).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/runtime.hh"
#include "serve/agent_pool.hh"
#include "util/logging.hh"
#include "serve/autoscaler.hh"
#include "serve/tenant_workload.hh"
#include "shard/shard_router.hh"

namespace freepart::serve {
namespace {

using shard::RoutedCall;
using shard::ShardRouter;
using shard::ShardRouterConfig;

struct Env {
    Env() : registry(fw::buildFullRegistry()), categorizer(registry)
    {
        cats = categorizer.categorizeAll();
    }

    std::unique_ptr<ShardRouter>
    makeRouter(ShardRouterConfig config)
    {
        return std::make_unique<ShardRouter>(
            registry, cats, core::PartitionPlan::freePartDefault(),
            std::move(config),
            [](osim::Kernel &kernel) { fw::seedFixtureFiles(kernel); });
    }

    std::unique_ptr<ShardRouter>
    makeRouter(uint32_t shard_count)
    {
        ShardRouterConfig config;
        config.shardCount = shard_count;
        return makeRouter(std::move(config));
    }

    fw::ApiRegistry registry;
    analysis::HybridCategorizer categorizer;
    analysis::Categorization cats;
};

Env &
env()
{
    static Env instance;
    return instance;
}

/** First routing key (from base) owned by the given shard. */
uint64_t
keyOwnedBy(const ShardRouter &router, uint32_t shard,
           uint64_t base = 1000)
{
    for (uint64_t key = base; key < base + 100000; ++key)
        if (router.ownerShardOf(key) == shard)
            return key;
    ADD_FAILURE() << "no key found for shard " << shard;
    return 0;
}

// ---- WarmAgentPool ---------------------------------------------------

AgentPoolConfig
smallPool(uint32_t initial)
{
    AgentPoolConfig config;
    config.initialSize = initial;
    config.maxSize = 8;
    config.warmHandoff = 100;
    config.epochReset = 300;
    config.coldSpawn = 10'000;
    return config;
}

TEST(WarmAgentPool, WarmCheckoutFromInitialInventory)
{
    WarmAgentPool pool(smallPool(2));
    PoolCheckout a = pool.checkout(0, 50);
    EXPECT_TRUE(a.warm);
    EXPECT_EQ(a.cost, 100u);
    EXPECT_EQ(a.waited, 0u);
    EXPECT_EQ(pool.leases(0), 1u);
    EXPECT_EQ(pool.idleReady(0, 50), 1u);
}

TEST(WarmAgentPool, DisabledPoolAlwaysColdStarts)
{
    AgentPoolConfig config = smallPool(4);
    config.enabled = false;
    WarmAgentPool pool(config);
    PoolCheckout a = pool.checkout(0, 0);
    EXPECT_FALSE(a.warm);
    EXPECT_EQ(a.cost, 10'000u);
    EXPECT_EQ(pool.stats().coldFallbacks, 1u);
    EXPECT_EQ(pool.stats().warmCheckouts, 0u);
}

TEST(WarmAgentPool, EmptyInventoryFallsBackCold)
{
    WarmAgentPool pool(smallPool(1));
    EXPECT_TRUE(pool.checkout(0, 0).warm);
    PoolCheckout b = pool.checkout(0, 0);
    EXPECT_FALSE(b.warm);
    EXPECT_EQ(pool.leases(0), 2u);
    EXPECT_EQ(pool.stats().coldFallbacks, 1u);
}

TEST(WarmAgentPool, ReleaseRecyclesAfterEpochReset)
{
    WarmAgentPool pool(smallPool(1));
    pool.checkout(0, 0);
    pool.release(0, 1'000); // clean again at 1'300

    // Checked out mid-reset: the session waits out the remainder.
    PoolCheckout mid = pool.checkout(0, 1'100);
    EXPECT_TRUE(mid.warm);
    EXPECT_EQ(mid.waited, 200u);
    EXPECT_EQ(mid.cost, 300u); // handoff + wait
    EXPECT_EQ(pool.stats().resetWaits, 1u);

    pool.release(0, 2'000);
    PoolCheckout done = pool.checkout(0, 5'000);
    EXPECT_TRUE(done.warm);
    EXPECT_EQ(done.waited, 0u);
    EXPECT_EQ(pool.stats().setsRecycled, 2u);
}

TEST(WarmAgentPool, MidSpawnSetsAreNotLeased)
{
    WarmAgentPool pool(smallPool(0));
    pool.ensureShards(1);
    // Governance grows the pool: the set spawns in the background.
    pool.setTarget(0, 1, 0);
    EXPECT_EQ(pool.stats().targetGrows, 1u);

    // Waiting out a 10'000-tick spawn beats nothing — a checkout
    // before maturity cold-starts and leaves the set to finish.
    PoolCheckout early = pool.checkout(0, 100);
    EXPECT_FALSE(early.warm);
    EXPECT_EQ(pool.idleReady(0, 10'000), 1u);

    PoolCheckout late = pool.checkout(0, 10'000);
    EXPECT_TRUE(late.warm);
}

TEST(WarmAgentPool, ShrinkDropsIdleSetsGrowIsBackground)
{
    WarmAgentPool pool(smallPool(4));
    pool.ensureShards(1);
    pool.setTarget(0, 1, 0);
    EXPECT_EQ(pool.stats().setsDropped, 3u);
    EXPECT_EQ(pool.idleReady(0, 0), 1u);

    pool.setTarget(0, 3, 0);
    // Two fresh sets join at spawn maturity, not instantly.
    EXPECT_EQ(pool.idleReady(0, 0), 1u);
    EXPECT_EQ(pool.idleReady(0, 10'000), 3u);
}

TEST(WarmAgentPool, ReleaseOverTargetDropsTheSet)
{
    WarmAgentPool pool(smallPool(2));
    pool.checkout(0, 0);
    pool.checkout(0, 0);
    pool.setTarget(0, 1, 0); // both sets are leased; nothing to drop
    pool.release(0, 10);     // still 1 lease out == target: torn down
    pool.release(0, 20);     // now under target: recycled
    EXPECT_EQ(pool.stats().setsRecycled, 1u);
    EXPECT_EQ(pool.stats().setsDropped, 1u);
}

TEST(WarmAgentPool, DrainLeasePeakResetsToCurrentLevel)
{
    WarmAgentPool pool(smallPool(4));
    pool.checkout(0, 0);
    pool.checkout(0, 0);
    pool.checkout(0, 0);
    pool.release(0, 10);
    EXPECT_EQ(pool.drainLeasePeak(0), 3u);
    EXPECT_EQ(pool.drainLeasePeak(0), 2u); // peak == current now
}

// ---- Autoscaler ------------------------------------------------------

AutoscalerConfig
testScalerConfig(uint32_t min_live, uint32_t max_live)
{
    AutoscalerConfig config;
    config.minLiveShards = min_live;
    config.maxLiveShards = max_live;
    config.tickInterval = 100'000;
    config.scaleUpDepth = 4.0;
    config.scaleDownDepth = 0.5;
    config.panicDepth = 1e9; // opt-in per test
    config.sustainUp = 2;
    config.sustainDown = 3;
    config.cooldown = 50'000;
    config.seed = [](osim::Kernel &kernel) {
        fw::seedFixtureFiles(kernel);
    };
    return config;
}

/** Pressure helper: push a shard's horizon far enough out that its
 *  queue depth clears any up threshold. */
void
loadShard(ShardRouter &router, uint32_t shard, osim::SimTime now,
          osim::SimTime backlog)
{
    router.chargeSessionStart(keyOwnedBy(router, shard), now, backlog,
                              true);
}

TEST(Autoscaler, SustainedPressureAddsAShard)
{
    auto router = env().makeRouter(2u);
    Autoscaler scaler(*router, testScalerConfig(2, 4));

    loadShard(*router, 0, 100'000, 10'000'000);
    scaler.observe(100'000);
    EXPECT_EQ(router->liveShardCount(), 2u); // one vote: not yet
    scaler.observe(200'000);
    EXPECT_EQ(router->liveShardCount(), 3u);
    EXPECT_EQ(scaler.stats().scaleUps, 1u);
    EXPECT_EQ(scaler.stats().shardsAdded, 1u);
    EXPECT_EQ(scaler.stats().shardsRevived, 0u);
}

TEST(Autoscaler, OneTickBlipDoesNotScale)
{
    auto router = env().makeRouter(2u);
    Autoscaler scaler(*router, testScalerConfig(2, 4));

    loadShard(*router, 0, 100'000, 1'000'000);
    scaler.observe(100'000); // pressure...
    // ...but the backlog drains before the next tick: streak broken.
    scaler.observe(2'000'000);
    scaler.observe(2'100'000);
    EXPECT_EQ(router->liveShardCount(), 2u);
    EXPECT_EQ(scaler.stats().scaleUps, 0u);
    EXPECT_GE(scaler.stats().blipsIgnored, 1u);
}

TEST(Autoscaler, CooldownSpacesScaleUpsAndPanicBypassesIt)
{
    AutoscalerConfig config = testScalerConfig(2, 6);
    config.cooldown = 100'000'000; // effectively forever
    auto router = env().makeRouter(2u);
    Autoscaler scaler(*router, config);

    // Moderate sustained pressure: one up, then the cooldown holds.
    loadShard(*router, 0, 0, 40'000'000);
    for (osim::SimTime t = 100'000; t <= 800'000; t += 100'000)
        scaler.observe(t);
    EXPECT_EQ(scaler.stats().scaleUps, 1u);
    EXPECT_GE(scaler.stats().cooldownHolds, 1u);
    EXPECT_EQ(scaler.stats().panicScaleUps, 0u);

    // Same load pattern with a reachable panic threshold: hard
    // overload may ignore the cooldown (scale up fast).
    AutoscalerConfig panicConfig = config;
    panicConfig.panicDepth = 8.0;
    auto router2 = env().makeRouter(2u);
    Autoscaler panicScaler(*router2, panicConfig);
    loadShard(*router2, 0, 0, 40'000'000);
    for (osim::SimTime t = 100'000; t <= 800'000; t += 100'000)
        panicScaler.observe(t);
    EXPECT_GT(panicScaler.stats().scaleUps, 1u);
    EXPECT_GE(panicScaler.stats().panicScaleUps, 1u);
}

TEST(Autoscaler, IdleScalesDownAndPressureRevivesTheRetiredSlot)
{
    auto router = env().makeRouter(3u);
    Autoscaler scaler(*router, testScalerConfig(2, 3));

    // Sustained idleness: the policy retires the shallowest shard.
    osim::SimTime t = 100'000;
    for (; t <= 500'000; t += 100'000)
        scaler.observe(t);
    EXPECT_EQ(scaler.stats().scaleDowns, 1u);
    EXPECT_EQ(router->liveShardCount(), 2u);
    uint32_t retired = shard::kInvalidShard;
    for (uint32_t s = 0; s < router->shardCount(); ++s)
        if (router->shardRetired(s))
            retired = s;
    ASSERT_NE(retired, shard::kInvalidShard);
    EXPECT_EQ(router->stats().shardsRetired, 1u);
    // Floor respected: more idleness never goes below minLiveShards.
    for (; t <= 1'500'000; t += 100'000)
        scaler.observe(t);
    EXPECT_EQ(router->liveShardCount(), 2u);

    // Pressure prefers reviving the retired slot over growing.
    uint32_t live = retired == 0 ? 1 : 0;
    loadShard(*router, live, t, 10'000'000);
    scaler.observe(t);
    scaler.observe(t + 100'000);
    EXPECT_EQ(router->liveShardCount(), 3u);
    EXPECT_EQ(scaler.stats().shardsRevived, 1u);
    EXPECT_EQ(scaler.stats().shardsAdded, 0u);
    EXPECT_FALSE(router->shardRetired(retired));
}

TEST(Autoscaler, GovernsPoolTargetsFromLeasePeaks)
{
    auto router = env().makeRouter(2u);
    AgentPoolConfig poolConfig = smallPool(2);
    WarmAgentPool pool(poolConfig);
    AutoscalerConfig config = testScalerConfig(2, 2);
    config.poolMin = 1;
    config.poolMax = 8;
    Autoscaler scaler(*router, config, &pool);

    pool.checkout(0, 0);
    pool.checkout(0, 0);
    pool.checkout(0, 0);
    scaler.observe(100'000);
    // Peak 3 leases + 2 spares.
    EXPECT_EQ(pool.target(0), 5u);

    // Sessions drain; once the lease peak fades the target shrinks —
    // but only when the gap clears the hysteresis band (2), and never
    // below the quiet-shard slack of peak 0 + 2 spares.
    pool.release(0, 10'000);
    pool.release(0, 20'000);
    pool.release(0, 30'000);
    for (osim::SimTime t = 200'000; t <= 600'000; t += 100'000)
        scaler.observe(t);
    EXPECT_EQ(pool.target(0), 2u);
    EXPECT_EQ(pool.target(1), 2u);
    EXPECT_GE(pool.stats().targetShrinks, 1u);
}

TEST(Autoscaler, ShardSecondsIntegralTracksMembership)
{
    auto router = env().makeRouter(2u);
    AutoscalerConfig config = testScalerConfig(2, 4);
    Autoscaler scaler(*router, config);
    loadShard(*router, 0, 0, 50'000'000);
    scaler.observe(100'000);
    scaler.observe(200'000); // scales to 3 here
    scaler.finish(1'200'000);
    // 2 shards for the first 0.2ms, 3 for the remaining 1.0ms.
    EXPECT_NEAR(scaler.stats().shardSeconds,
                (2.0 * 200'000 + 3.0 * 1'000'000) * 1e-9, 1e-9);
}

TEST(Autoscaler, RejectsDegenerateConfig)
{
    auto router = env().makeRouter(1u);
    AutoscalerConfig bad = testScalerConfig(1, 1);
    bad.minLiveShards = 0;
    EXPECT_THROW(Autoscaler(*router, bad), util::FatalError);
    bad = testScalerConfig(2, 1);
    EXPECT_THROW(Autoscaler(*router, bad), util::FatalError);
    bad = testScalerConfig(1, 2);
    bad.scaleUpDepth = 0.4; // below scaleDownDepth: no hysteresis
    EXPECT_THROW(Autoscaler(*router, bad), util::FatalError);
    bad = testScalerConfig(1, 2);
    bad.panicDepth = 1.0; // below scaleUpDepth
    EXPECT_THROW(Autoscaler(*router, bad), util::FatalError);
}

// ---- Shard retirement semantics -------------------------------------

TEST(ShardRetire, EvacuatesObjectsAndScrubsTheSlot)
{
    auto router = env().makeRouter(3u);
    uint32_t victim = 2;
    uint64_t key = keyOwnedBy(*router, victim);
    RoutedCall load = router->invoke(
        key, "cv2.imread",
        {ipc::Value(std::string("/data/test.fpim"))});
    ASSERT_TRUE(load.result.ok) << load.result.error;
    uint64_t id = load.result.values[0].asRef().objectId;
    ASSERT_EQ(router->homeShardOf(id), victim);

    ASSERT_TRUE(router->retireShard(victim));
    EXPECT_TRUE(router->shardRetired(victim));
    EXPECT_FALSE(router->shardLive(victim));
    EXPECT_FALSE(router->ring().contains(victim));

    // The object survived on a survivor shard, readable through the
    // directory; nothing was lost.
    uint32_t home = router->homeShardOf(id);
    EXPECT_NE(home, victim);
    EXPECT_NE(home, shard::kInvalidShard);
    RoutedCall use = router->invoke(
        key, "cv2.bitwise_not", {ipc::Value(ipc::ObjectRef{0, id})});
    EXPECT_TRUE(use.result.ok) << use.result.error;
    EXPECT_GE(router->stats().retireEvacuations, 1u);
    EXPECT_EQ(router->stats().lostObjects, 0u);
    EXPECT_EQ(router->stats().shardsRetired, 1u);

    // Retiring the last live pair down to one is allowed; retiring
    // the final shard is not.
    EXPECT_TRUE(router->retireShard(0));
    EXPECT_FALSE(router->retireShard(1));
}

TEST(ShardRetire, EndedSessionTokensStillAnswerDeduped)
{
    ShardRouterConfig config;
    config.shardCount = 3;
    auto router = env().makeRouter(std::move(config));
    uint32_t victim = 1;
    uint64_t key = keyOwnedBy(*router, victim);

    // A short session: start, two acked calls, teardown.
    router->chargeSessionStart(key, 0, 1'000, true);
    shard::CallOptions opts;
    opts.dedupToken = 71;
    opts.arrival = 10'000;
    RoutedCall a = router->invokeAt(
        key, "cv2.imread",
        {ipc::Value(std::string("/data/test.fpim"))}, opts);
    ASSERT_TRUE(a.result.ok) << a.result.error;
    opts.dedupToken = 72;
    opts.arrival = 20'000;
    RoutedCall b = router->invokeAt(key, "cv2.bitwise_not",
                                    {a.result.values[0]}, opts);
    ASSERT_TRUE(b.result.ok) << b.result.error;
    EXPECT_GE(router->endSession(key), 1u);
    EXPECT_EQ(router->stats().sessionsEnded, 1u);

    // The teardown scrubbed the session's objects but retained its
    // dedup entries: late duplicates must answer `deduped`, and a
    // later retirement of the owner must not prune them either
    // (deliberate scrub != retirement casualty).
    ASSERT_TRUE(router->retireShard(victim));
    RoutedCall dupA = router->invoke(key, "cv2.bitwise_not", {}, 71);
    RoutedCall dupB = router->invoke(key, "cv2.bitwise_not", {}, 72);
    EXPECT_TRUE(dupA.result.ok && dupA.deduped);
    EXPECT_TRUE(dupB.result.ok && dupB.deduped);
}

TEST(ShardRetire, UnevacuableObjectPrunesItsDedupEntry)
{
    ShardRouterConfig config;
    config.shardCount = 3;
    config.replicateObjects = false; // no replica safety net
    auto router = env().makeRouter(std::move(config));
    uint32_t victim = 1;
    uint64_t key = keyOwnedBy(*router, victim);

    shard::CallOptions opts;
    opts.dedupToken = 91;
    opts.arrival = 10'000;
    RoutedCall load = router->invokeAt(
        key, "cv2.imread",
        {ipc::Value(std::string("/data/test.fpim"))}, opts);
    ASSERT_TRUE(load.result.ok) << load.result.error;
    uint64_t id = load.result.values[0].asRef().objectId;

    // Simulate app-level loss of the authoritative copy: the retire
    // evacuation finds neither a serializable source nor a replica.
    router->runtime(victim).evictObjects({id});
    ASSERT_TRUE(router->retireShard(victim));
    EXPECT_GE(router->stats().dedupScrubbed, 1u);

    // The token's cached answer would have dangled — a resubmit
    // re-executes instead of answering deduped.
    RoutedCall again = router->invoke(
        key, "cv2.imread",
        {ipc::Value(std::string("/data/test.fpim"))}, 91);
    EXPECT_TRUE(again.result.ok) << again.result.error;
    EXPECT_FALSE(again.deduped);
}

TEST(ShardRetire, QueueDepthReadsBusyHorizon)
{
    auto router = env().makeRouter(2u);
    EXPECT_EQ(router->queueDepthAt(0, 0), 0.0);
    uint64_t key = keyOwnedBy(*router, 0);
    router->chargeSessionStart(key, 0, 1'000'000, false);
    EXPECT_GT(router->queueDepthAt(0, 0), 0.0);
    // The horizon drains with time and never goes negative.
    EXPECT_EQ(router->queueDepthAt(0, 2'000'000), 0.0);
    // Dead shards read zero depth.
    router->killShard(1);
    EXPECT_EQ(router->queueDepthAt(1, 0), 0.0);
    const shard::ClusterStats &stats = router->stats();
    EXPECT_EQ(stats.sessionsStarted, 1u);
    EXPECT_EQ(stats.coldStarts, 1u);
    EXPECT_EQ(stats.sessionStartCost, 1'000'000u);
}

// ---- TenantTrafficGenerator -----------------------------------------

TEST(TenantTraffic, DeterministicRunWithZeroLostAcks)
{
    apps::WorkloadGenerator::Config wconfig;
    wconfig.maxRounds = 1;
    wconfig.maxCallsPerRound = 4;
    wconfig.imageRows = 32;
    wconfig.imageCols = 32;
    apps::WorkloadGenerator generator(env().registry, wconfig);

    TenantWorkloadConfig tconfig;
    tconfig.tenants = 40;
    tconfig.zipfExponent = 1.1;
    tconfig.maxConcurrentSessions = 8;

    auto runOnce = [&]() {
        ShardRouterConfig config;
        config.shardCount = 2;
        config.dedupEntries = 1 << 12;
        auto router = env().makeRouter(std::move(config));
        AgentPoolConfig poolConfig;
        // Floor the inventory at the session cap so even a fully
        // skewed shard never cold-starts (the bench lesson).
        poolConfig.initialSize = 8;
        poolConfig.maxSize = 12;
        WarmAgentPool pool(poolConfig);
        TenantTrafficGenerator traffic(generator, tconfig);
        std::vector<RampPhase> phases = {{250, 1'000'000}};
        return traffic.run(*router, phases, nullptr, &pool);
    };

    ServeOutcome a = runOnce();
    ServeOutcome b = runOnce();

    EXPECT_EQ(a.issued, 250u);
    EXPECT_EQ(a.acked, a.issued); // unloaded: everything acks
    EXPECT_EQ(a.lostAcks, 0u);    // at-least-once audit
    EXPECT_GT(a.sessionsStarted, 0u);
    EXPECT_GE(a.sessionsStarted, a.sessionsCompleted);
    EXPECT_EQ(a.cluster.sessionsEnded, a.sessionsStarted);
    EXPECT_GT(a.tenantsTouched, 1u);
    EXPECT_LE(a.pool.leasesPeak, tconfig.maxConcurrentSessions);
    EXPECT_EQ(a.pool.coldFallbacks, 0u);
    EXPECT_GT(a.p50Us, 0.0);
    EXPECT_GE(a.p99Us, a.p50Us);
    EXPECT_GE(a.p999Us, a.p99Us);

    // Byte-identical replay.
    EXPECT_EQ(b.issued, a.issued);
    EXPECT_EQ(b.acked, a.acked);
    EXPECT_EQ(b.sessionsStarted, a.sessionsStarted);
    EXPECT_EQ(b.sessionsCompleted, a.sessionsCompleted);
    EXPECT_EQ(b.p50Us, a.p50Us);
    EXPECT_EQ(b.p99Us, a.p99Us);
    EXPECT_EQ(b.cluster.makespan, a.cluster.makespan);
    EXPECT_EQ(b.pool.warmCheckouts, a.pool.warmCheckouts);
}

TEST(TenantTraffic, ZipfSkewsTrafficTowardHotTenants)
{
    apps::WorkloadGenerator::Config wconfig;
    wconfig.maxRounds = 1;
    wconfig.maxCallsPerRound = 4;
    wconfig.imageRows = 32;
    wconfig.imageCols = 32;
    apps::WorkloadGenerator generator(env().registry, wconfig);

    TenantWorkloadConfig tconfig;
    tconfig.tenants = 100;
    tconfig.zipfExponent = 1.4;
    tconfig.maxConcurrentSessions = 8;
    tconfig.tenantPercentileMinAcks = 5;

    ShardRouterConfig config;
    config.shardCount = 2;
    config.dedupEntries = 1 << 12;
    auto router = env().makeRouter(std::move(config));
    TenantTrafficGenerator traffic(generator, tconfig);
    std::vector<RampPhase> phases = {{300, 400'000}};
    ServeOutcome out = traffic.run(*router, phases, nullptr, nullptr);

    // Rank-0 tenants dominate; the long tail still gets touched.
    EXPECT_GT(out.hottestTenantShare, 0.05);
    EXPECT_GT(out.tenantsTouched, 10u);
    EXPECT_GE(out.tenantsInBreakdown, 1u);
    EXPECT_GT(out.worstTenantP99Us, 0.0);
    EXPECT_EQ(out.lostAcks, 0u);
}

TEST(TenantTraffic, PercentileIsNearestRankOnSortedInput)
{
    std::vector<double> sorted;
    for (int i = 1; i <= 100; ++i)
        sorted.push_back(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(percentileUs(sorted, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentileUs(sorted, 0.50), 51.0);
    EXPECT_DOUBLE_EQ(percentileUs(sorted, 1.0), 100.0);
    EXPECT_DOUBLE_EQ(percentileUs({}, 0.99), 0.0);
}

} // namespace
} // namespace freepart::serve
