/**
 * @file
 * Integration tests for FreePartRuntime: partitioned execution of a
 * full pipeline, LDC vs eager data movement, the framework state
 * machine with temporal memory protection, seccomp policies with the
 * init grace period, exactly-once RPC, and agent crash/restart with
 * checkpointed state.
 */

#include <gtest/gtest.h>

#include "core/runtime.hh"

namespace freepart::core {
namespace {

using fw::ApiType;

struct Env {
    Env()
        : registry(fw::buildFullRegistry()),
          categorizer(registry)
    {
        cats = categorizer.categorizeAll();
    }

    /** New kernel + runtime with the given plan/config. */
    std::unique_ptr<FreePartRuntime>
    makeRuntime(PartitionPlan plan, RuntimeConfig config = {})
    {
        kernel = std::make_unique<osim::Kernel>();
        fw::seedFixtureFiles(*kernel);
        return std::make_unique<FreePartRuntime>(
            *kernel, registry, cats, std::move(plan), config);
    }

    fw::ApiRegistry registry;
    analysis::HybridCategorizer categorizer;
    analysis::Categorization cats;
    std::unique_ptr<osim::Kernel> kernel;
};

Env &
env()
{
    static Env instance;
    return instance;
}

TEST(Runtime, SpawnsHostAndFourAgents)
{
    auto runtime = env().makeRuntime(PartitionPlan::freePartDefault());
    EXPECT_TRUE(runtime->hostAlive());
    for (uint32_t p = 0; p < 4; ++p) {
        EXPECT_TRUE(runtime->agentAlive(p));
        EXPECT_NE(runtime->agentPid(p), runtime->hostPid());
    }
    EXPECT_EQ(runtime->plan().partitionCount(), 4u);
}

TEST(Runtime, PipelineRunsAcrossPartitions)
{
    auto runtime = env().makeRuntime(PartitionPlan::freePartDefault());

    ApiResult loaded = runtime->invoke(
        "cv2.imread", {ipc::Value(std::string("/data/test.fpim"))});
    ASSERT_TRUE(loaded.ok) << loaded.error;
    ASSERT_EQ(loaded.values.size(), 1u);
    ipc::ObjectRef img = loaded.values[0].asRef();
    EXPECT_EQ(runtime->homeOf(img.objectId), 0u); // loading agent

    ApiResult gray =
        runtime->invoke("cv2.cvtColor", {ipc::Value(img)});
    ASSERT_TRUE(gray.ok) << gray.error;
    ipc::ObjectRef gray_ref = gray.values[0].asRef();

    ApiResult blurred =
        runtime->invoke("cv2.GaussianBlur", {ipc::Value(gray_ref)});
    ASSERT_TRUE(blurred.ok) << blurred.error;
    EXPECT_EQ(runtime->homeOf(blurred.values[0].asRef().objectId),
              1u); // processing agent

    ApiResult shown = runtime->invoke(
        "cv2.imshow", {ipc::Value(std::string("win")),
                       blurred.values[0]});
    ASSERT_TRUE(shown.ok) << shown.error;
    EXPECT_EQ(env().kernel->display().events().size(), 1u);

    ApiResult stored = runtime->invoke(
        "cv2.imwrite", {ipc::Value(std::string("/out/result.fpim")),
                        blurred.values[0]});
    ASSERT_TRUE(stored.ok) << stored.error;
    EXPECT_TRUE(env().kernel->vfs().exists("/out/result.fpim"));
}

TEST(Runtime, PipelineResultMatchesUnpartitionedRun)
{
    // The same pipeline with and without isolation must produce
    // byte-identical output files (the §5 "Correctness" claim).
    auto run = [&](PartitionPlan plan) {
        auto runtime = env().makeRuntime(std::move(plan));
        ApiResult img = runtime->invoke(
            "cv2.imread",
            {ipc::Value(std::string("/data/test.fpim"))});
        ApiResult gray =
            runtime->invoke("cv2.cvtColor", {img.values[0]});
        ApiResult edges = runtime->invoke(
            "cv2.Canny", {gray.values[0], ipc::Value(uint64_t(40)),
                          ipc::Value(uint64_t(120))});
        runtime->invoke("cv2.imwrite",
                        {ipc::Value(std::string("/out/e.fpim")),
                         edges.values[0]});
        return env().kernel->vfs().getFile("/out/e.fpim");
    };
    std::vector<uint8_t> partitioned =
        run(PartitionPlan::freePartDefault());
    std::vector<uint8_t> in_host = run(PartitionPlan::inHost());
    EXPECT_EQ(partitioned, in_host);
}

TEST(Runtime, LdcPassesReferencesNotData)
{
    RuntimeConfig with_ldc;
    with_ldc.lazyDataCopy = true;
    auto runtime = env().makeRuntime(PartitionPlan::freePartDefault(),
                                     with_ldc);
    ApiResult img = runtime->invoke(
        "cv2.imread", {ipc::Value(std::string("/data/test.fpim"))});
    runtime->invoke("cv2.GaussianBlur", {img.values[0]});
    const RunStats &stats = runtime->stats();
    // One direct loading-agent -> processing-agent copy; results
    // stayed put (lazy).
    EXPECT_EQ(stats.directCopies, 1u);
    EXPECT_EQ(stats.eagerCopies, 0u);
    EXPECT_GT(stats.lazyCopies, 0u);
}

TEST(Runtime, WithoutLdcDataFlowsThroughHost)
{
    RuntimeConfig no_ldc;
    no_ldc.lazyDataCopy = false;
    auto runtime = env().makeRuntime(PartitionPlan::freePartDefault(),
                                     no_ldc);
    ApiResult img = runtime->invoke(
        "cv2.imread", {ipc::Value(std::string("/data/test.fpim"))});
    runtime->invoke("cv2.GaussianBlur", {img.values[0]});
    const RunStats &stats = runtime->stats();
    // imread result copied agent->host; arg copied host->agent; blur
    // result copied agent->host again.
    EXPECT_GE(stats.eagerCopies, 3u);
    EXPECT_EQ(stats.directCopies, 0u);
}

TEST(Runtime, LdcMovesMoreBytesWhenDisabled)
{
    auto measure = [&](bool ldc) {
        RuntimeConfig config;
        config.lazyDataCopy = ldc;
        auto runtime = env().makeRuntime(
            PartitionPlan::freePartDefault(), config);
        ApiResult img = runtime->invoke(
            "cv2.imread",
            {ipc::Value(std::string("/data/test.fpim"))});
        ipc::Value ref = img.values[0];
        for (int i = 0; i < 5; ++i) {
            ApiResult r = runtime->invoke("cv2.GaussianBlur", {ref});
            ref = r.values[0];
        }
        return runtime->stats().bytesTransferred;
    };
    EXPECT_LT(measure(true), measure(false) / 2);
}

TEST(Runtime, StateMachineFollowsApiTypes)
{
    auto runtime = env().makeRuntime(PartitionPlan::freePartDefault());
    EXPECT_EQ(runtime->state(), FrameworkState::Initialization);
    ApiResult img = runtime->invoke(
        "cv2.imread", {ipc::Value(std::string("/data/test.fpim"))});
    EXPECT_EQ(runtime->state(), FrameworkState::Loading);
    runtime->invoke("cv2.GaussianBlur", {img.values[0]});
    EXPECT_EQ(runtime->state(), FrameworkState::Processing);
    runtime->invoke("cv2.imshow",
                    {ipc::Value(std::string("w")), img.values[0]});
    EXPECT_EQ(runtime->state(), FrameworkState::Visualizing);
}

TEST(Runtime, NeutralApiDoesNotChangeState)
{
    auto runtime = env().makeRuntime(PartitionPlan::freePartDefault());
    ApiResult img = runtime->invoke(
        "cv2.imread", {ipc::Value(std::string("/data/test.fpim"))});
    EXPECT_EQ(runtime->state(), FrameworkState::Loading);
    // cvtColor is type-neutral: state stays Loading and it runs in
    // the loading agent (the paper's imread->cvtColor example).
    ApiResult gray =
        runtime->invoke("cv2.cvtColor", {img.values[0]});
    ASSERT_TRUE(gray.ok);
    EXPECT_EQ(runtime->state(), FrameworkState::Loading);
    EXPECT_EQ(runtime->homeOf(gray.values[0].asRef().objectId), 0u);
}

TEST(Runtime, TemporalProtectionFlipsPreviousStateData)
{
    auto runtime = env().makeRuntime(PartitionPlan::freePartDefault());
    // template-style critical data defined during Initialization.
    osim::Addr tmpl = runtime->allocHostData("template", 256);
    runtime->hostProcess().space().writeValue<uint32_t>(tmpl, 0x7e);

    // Entering Loading flips Initialization-defined data read-only.
    runtime->invoke("cv2.imread",
                    {ipc::Value(std::string("/data/test.fpim"))});
    EXPECT_THROW(
        runtime->hostProcess().space().writeValue<uint32_t>(tmpl, 1),
        osim::MemFault);
    EXPECT_EQ(
        runtime->hostProcess().space().readValue<uint32_t>(tmpl),
        0x7eu);
    const RunStats &stats = runtime->stats();
    EXPECT_GE(stats.protectionFlips, 1u);
    EXPECT_GE(stats.stateChanges, 1u);
}

TEST(Runtime, ProtectionDisabledLeavesDataWritable)
{
    RuntimeConfig config;
    config.enforceMemoryProtection = false;
    auto runtime = env().makeRuntime(PartitionPlan::freePartDefault(),
                                     config);
    osim::Addr tmpl = runtime->allocHostData("template", 64);
    runtime->invoke("cv2.imread",
                    {ipc::Value(std::string("/data/test.fpim"))});
    EXPECT_NO_THROW(
        runtime->hostProcess().space().writeValue<uint32_t>(tmpl, 1));
}

TEST(Runtime, AgentPoliciesInstalledPerPartition)
{
    auto runtime = env().makeRuntime(PartitionPlan::freePartDefault());
    // Loading agent may read files but never send network data.
    const osim::SyscallFilter &loading = runtime->agentFilter(0);
    EXPECT_TRUE(loading.installed());
    EXPECT_TRUE(loading.permits(osim::Syscall::Openat));
    EXPECT_TRUE(loading.permits(osim::Syscall::Read));
    EXPECT_FALSE(loading.permits(osim::Syscall::Send));
    EXPECT_FALSE(loading.permits(osim::Syscall::Sendto));
    // Processing agent: pure compute, no file writes.
    const osim::SyscallFilter &processing = runtime->agentFilter(1);
    EXPECT_FALSE(processing.permits(osim::Syscall::Write));
    EXPECT_FALSE(processing.permits(osim::Syscall::Send));
    // Visualizing agent needs the GUI socket path.
    const osim::SyscallFilter &visualizing = runtime->agentFilter(2);
    EXPECT_TRUE(visualizing.permits(osim::Syscall::Sendto));
    EXPECT_TRUE(visualizing.permits(osim::Syscall::Connect));
    // Storing agent writes files but has no GUI access.
    const osim::SyscallFilter &storing = runtime->agentFilter(3);
    EXPECT_TRUE(storing.permits(osim::Syscall::Write));
    EXPECT_FALSE(storing.permits(osim::Syscall::Sendto));
}

TEST(Runtime, LockdownDropsInitOnlySyscallsAndLocks)
{
    auto runtime = env().makeRuntime(PartitionPlan::freePartDefault());
    ApiResult img = runtime->invoke(
        "cv2.imread", {ipc::Value(std::string("/data/test.fpim"))});
    runtime->invoke("cv2.imshow",
                    {ipc::Value(std::string("w")), img.values[0]});
    runtime->lockdownAll();
    const osim::SyscallFilter &visualizing = runtime->agentFilter(2);
    EXPECT_TRUE(visualizing.locked());
    EXPECT_FALSE(visualizing.permits(osim::Syscall::Connect));
    EXPECT_FALSE(visualizing.permits(osim::Syscall::Mprotect));
    // imshow still works: the GUI socket was connected pre-lockdown.
    ApiResult again = runtime->invoke(
        "cv2.imshow", {ipc::Value(std::string("w")), img.values[0]});
    EXPECT_TRUE(again.ok) << again.error;
}

TEST(Runtime, VideoCaptureWorksAfterLockdown)
{
    auto runtime = env().makeRuntime(PartitionPlan::freePartDefault());
    ApiResult first = runtime->invoke("cv2.VideoCapture.read", {});
    ASSERT_TRUE(first.ok) << first.error;
    runtime->lockdownAll();
    ApiResult second = runtime->invoke("cv2.VideoCapture.read", {});
    EXPECT_TRUE(second.ok) << second.error;
}

TEST(Runtime, ExactlyOnceDeduplicatesBySequence)
{
    auto runtime = env().makeRuntime(PartitionPlan::freePartDefault());
    ApiResult a = runtime->invoke("cv2.VideoCapture.read", {});
    ApiResult b = runtime->invoke("cv2.VideoCapture.read", {});
    ASSERT_TRUE(a.ok && b.ok);
    // Different sequence numbers -> two distinct frames captured.
    EXPECT_EQ(env().kernel->camera().framesCaptured(), 2u);
}

TEST(Runtime, AgentCrashIsContainedAndRestarted)
{
    auto runtime = env().makeRuntime(PartitionPlan::freePartDefault());
    // Craft a malicious image whose payload DoS-crashes imread.
    fw::ExploitPayload payload;
    payload.kind = fw::PayloadKind::Dos;
    payload.cve = "CVE-2017-14136";
    env().kernel->vfs().putFile(
        "/data/evil.fpim",
        fw::encodeImageFile(8, 8, 1, fw::synthPixels(8, 8, 1, 0),
                            payload));

    ApiResult result = runtime->invoke(
        "cv2.imread", {ipc::Value(std::string("/data/evil.fpim"))});
    // The attack crashes the loading agent (twice, including the
    // at-least-once retry); the host survives.
    EXPECT_FALSE(result.ok);
    EXPECT_TRUE(result.agentCrashed);
    EXPECT_TRUE(runtime->hostAlive());
    const RunStats &stats = runtime->stats();
    EXPECT_GE(stats.agentCrashes, 1u);
    EXPECT_GE(stats.agentRestarts, 1u);
    EXPECT_GE(stats.retriedCalls, 1u);

    // The agent is usable again for benign input.
    ApiResult benign = runtime->invoke(
        "cv2.imread", {ipc::Value(std::string("/data/test.fpim"))});
    EXPECT_TRUE(benign.ok) << benign.error;
}

TEST(Runtime, NoRestartLeavesAgentDead)
{
    RuntimeConfig config;
    config.restartAgents = false;
    auto runtime = env().makeRuntime(PartitionPlan::freePartDefault(),
                                     config);
    fw::ExploitPayload payload;
    payload.kind = fw::PayloadKind::Dos;
    payload.cve = "CVE-2017-14136";
    env().kernel->vfs().putFile(
        "/data/evil.fpim",
        fw::encodeImageFile(8, 8, 1, fw::synthPixels(8, 8, 1, 0),
                            payload));
    runtime->invoke("cv2.imread",
                    {ipc::Value(std::string("/data/evil.fpim"))});
    EXPECT_FALSE(runtime->agentAlive(0));
    ApiResult after = runtime->invoke(
        "cv2.imread", {ipc::Value(std::string("/data/test.fpim"))});
    EXPECT_FALSE(after.ok);
    // Other agents unaffected.
    EXPECT_TRUE(runtime->agentAlive(1));
}

TEST(Runtime, CheckpointRestoresStatefulObjectsAcrossRestart)
{
    RuntimeConfig config;
    config.checkpointInterval = 1; // checkpoint after every call
    auto runtime = env().makeRuntime(PartitionPlan::freePartDefault(),
                                     config);
    // Train a "model": stateful weights live in the processing agent.
    ApiResult model = runtime->invoke(
        "torch.load", {ipc::Value(std::string("/data/model.fpt"))});
    ASSERT_TRUE(model.ok) << model.error;
    ipc::ObjectRef weights = model.values[0].asRef();
    // Mutate the state via a stateful API (checkpointed afterwards).
    ApiResult data = runtime->invoke(
        "torch.load", {ipc::Value(std::string("/data/model.fpt"))});
    ApiResult trained = runtime->invoke(
        "tf.estimator.DNNClassifier.train",
        {ipc::Value(weights), data.values[0]});
    ASSERT_TRUE(trained.ok) << trained.error;

    // The weights live in the processing agent now; remember them.
    uint32_t p = runtime->homeOf(weights.objectId);
    runtime->fetchToHost(weights);
    std::vector<uint8_t> before =
        runtime->hostStore().serialize(weights.objectId);

    // Crash + restart the agent; checkpointed state is restored.
    env().kernel->faultProcess(
        env().kernel->process(runtime->agentPid(p)), "induced");
    ASSERT_TRUE(runtime->restartAgent(p));
    EXPECT_TRUE(runtime->agentAlive(p));
    EXPECT_TRUE(runtime->storeOf(p).has(weights.objectId));
    std::vector<uint8_t> after =
        runtime->storeOf(p).serialize(weights.objectId);
    EXPECT_EQ(before, after);
}

TEST(Runtime, InHostPlanRunsEverythingInHostProcess)
{
    auto runtime = env().makeRuntime(PartitionPlan::inHost());
    ApiResult img = runtime->invoke(
        "cv2.imread", {ipc::Value(std::string("/data/test.fpim"))});
    ASSERT_TRUE(img.ok);
    EXPECT_EQ(runtime->homeOf(img.values[0].asRef().objectId),
              kHostPartition);
    EXPECT_EQ(runtime->stats().ipcMessages, 0u);
}

TEST(Runtime, SingleAgentPlanUsesOnePartition)
{
    auto runtime = env().makeRuntime(PartitionPlan::singleAgent());
    ApiResult img = runtime->invoke(
        "cv2.imread", {ipc::Value(std::string("/data/test.fpim"))});
    ApiResult blur =
        runtime->invoke("cv2.GaussianBlur", {img.values[0]});
    ASSERT_TRUE(blur.ok);
    EXPECT_EQ(runtime->homeOf(blur.values[0].asRef().objectId), 0u);
    // Same-partition args need no copies at all.
    EXPECT_EQ(runtime->stats().directCopies, 0u);
}

TEST(Runtime, FetchToHostMakesDataReadableAndCountsEager)
{
    auto runtime = env().makeRuntime(PartitionPlan::freePartDefault());
    ApiResult img = runtime->invoke(
        "cv2.imread", {ipc::Value(std::string("/data/test.fpim"))});
    ipc::ObjectRef ref = img.values[0].asRef();
    runtime->fetchToHost(ref);
    EXPECT_EQ(runtime->homeOf(ref.objectId), kHostPartition);
    const fw::MatDesc &mat = runtime->hostStore().mat(ref.objectId);
    EXPECT_EQ(mat.rows, 64u);
    EXPECT_GE(runtime->stats().eagerCopies, 1u);
}

TEST(Runtime, StatsTrackIpcAndSimTime)
{
    auto runtime = env().makeRuntime(PartitionPlan::freePartDefault());
    ApiResult img = runtime->invoke(
        "cv2.imread", {ipc::Value(std::string("/data/test.fpim"))});
    ASSERT_TRUE(img.ok);
    const RunStats &stats = runtime->stats();
    EXPECT_EQ(stats.apiCalls, 1u);
    EXPECT_EQ(stats.ipcMessages, 2u); // request + response
    EXPECT_GT(stats.bytesTransferred, 0u);
    EXPECT_GT(stats.elapsed(), 0u);
}

TEST(Runtime, UnknownApiReturnsError)
{
    auto runtime = env().makeRuntime(PartitionPlan::freePartDefault());
    ApiResult result = runtime->invoke("cv2.doesNotExist", {});
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("unknown API"), std::string::npos);
}

TEST(PartitionPlan, CustomMapValidation)
{
    std::map<std::string, uint32_t> map = {{"cv2.imread", 0},
                                           {"cv2.imshow", 1}};
    PartitionPlan plan = PartitionPlan::custom(map, 2);
    EXPECT_EQ(plan.partitionFor("cv2.imread", ApiType::Loading), 0u);
    EXPECT_EQ(plan.partitionFor("cv2.imshow", ApiType::Visualizing),
              1u);
    // Unlisted APIs run in the host under ByApi plans.
    EXPECT_EQ(plan.partitionFor("cv2.erode", ApiType::Processing),
              kHostPartition);
    EXPECT_ANY_THROW(PartitionPlan::custom({{"x", 5}}, 2));
}

TEST(PartitionPlan, PerApiAssignsDistinctPartitions)
{
    PartitionPlan plan =
        PartitionPlan::perApi({"a", "b", "c", "b"});
    EXPECT_EQ(plan.partitionCount(), 3u);
    EXPECT_NE(plan.partitionFor("a", ApiType::Processing),
              plan.partitionFor("b", ApiType::Processing));
}

TEST(FrameworkStates, NamesAndMapping)
{
    EXPECT_STREQ(frameworkStateName(FrameworkState::Loading),
                 "Data Loading");
    EXPECT_EQ(stateForType(ApiType::Storing),
              FrameworkState::Storing);
    EXPECT_EQ(stateForType(ApiType::Visualizing),
              FrameworkState::Visualizing);
}

} // namespace
} // namespace freepart::core
