/**
 * @file
 * Tests for the framework data layer: Mat/Tensor serialization and
 * views, the object store, the FPIM image format (including exploit
 * trailers), and the exploit-payload codec.
 */

#include <gtest/gtest.h>

#include "fw/image_format.hh"
#include "fw/mat.hh"
#include "fw/object_store.hh"
#include "fw/tensor.hh"
#include "fw/vuln.hh"
#include "osim/kernel.hh"

namespace freepart::fw {
namespace {

TEST(Mat, ByteLenAndElements)
{
    MatDesc m{4, 6, 3, 0x1000};
    EXPECT_EQ(m.byteLen(), 72u);
    EXPECT_EQ(m.elements(), 72u);
    EXPECT_TRUE(m.valid());
    EXPECT_FALSE(MatDesc().valid());
}

TEST(Mat, SerializationRoundTrip)
{
    osim::AddressSpace space(1);
    MatDesc src;
    src.rows = 3;
    src.cols = 5;
    src.channels = 2;
    src.addr = space.alloc(src.byteLen());
    std::vector<uint8_t> pixels = synthPixels(3, 5, 2, 42);
    space.write(src.addr, pixels.data(), pixels.size());

    std::vector<uint8_t> wire = matToBytes(space, src);
    MatDesc back = matFromBytes(space, wire, "copy");
    EXPECT_EQ(back.rows, 3u);
    EXPECT_EQ(back.cols, 5u);
    EXPECT_EQ(back.channels, 2u);
    std::vector<uint8_t> out(back.byteLen());
    space.read(back.addr, out.data(), out.size());
    EXPECT_EQ(out, pixels);
}

TEST(Mat, TruncatedBytesRejected)
{
    osim::AddressSpace space(1);
    std::vector<uint8_t> junk(8, 0);
    EXPECT_ANY_THROW(matFromBytes(space, junk));
}

TEST(Mat, ViewRespectsProtection)
{
    osim::AddressSpace space(1);
    MatDesc m{2, 2, 1, 0};
    m.addr = space.alloc(m.byteLen());
    space.protect(m.addr, m.byteLen(), osim::PermRead);
    EXPECT_NO_THROW(MatView(space, m));
    EXPECT_THROW(MatView(space, m, true), osim::MemFault);
}

TEST(Mat, ViewPixelAccessors)
{
    osim::AddressSpace space(1);
    MatDesc m{2, 3, 2, 0};
    m.addr = space.alloc(m.byteLen());
    MatView view(space, m, true);
    view.set(1, 2, 1, 99);
    EXPECT_EQ(view.at(1, 2, 1), 99);
    EXPECT_EQ(view.at(0, 0, 0), 0);
}

TEST(Tensor, ShapeArithmetic)
{
    TensorDesc t;
    t.shape = {2, 3, 4};
    EXPECT_EQ(t.elements(), 24u);
    EXPECT_EQ(t.byteLen(), 96u);
    TensorDesc empty;
    EXPECT_EQ(empty.elements(), 0u);
}

TEST(Tensor, SerializationRoundTrip)
{
    osim::AddressSpace space(1);
    TensorDesc t;
    t.shape = {2, 5};
    t.addr = space.alloc(t.byteLen());
    std::vector<float> values(10);
    for (size_t i = 0; i < 10; ++i)
        values[i] = static_cast<float>(i) * 1.5f;
    tensorWrite(space, t, values);

    std::vector<uint8_t> wire = tensorToBytes(space, t);
    TensorDesc back = tensorFromBytes(space, wire);
    EXPECT_EQ(back.shape, (std::vector<uint32_t>{2, 5}));
    EXPECT_EQ(tensorRead(space, back), values);
}

TEST(Tensor, ImplausibleRankRejected)
{
    osim::AddressSpace space(1);
    std::vector<uint8_t> bad(64, 0xff);
    EXPECT_ANY_THROW(tensorFromBytes(space, bad));
}

TEST(ObjectStore, PutGetEraseMat)
{
    osim::Kernel kernel;
    osim::Process &proc = kernel.spawn("p");
    uint64_t counter = 0;
    ObjectStore store(kernel, proc.pid(), &counter);
    MatDesc m{2, 2, 1, proc.space().alloc(4)};
    uint64_t id = store.putMat(m, "m");
    EXPECT_TRUE(store.has(id));
    EXPECT_EQ(store.mat(id).rows, 2u);
    EXPECT_EQ(store.get(id).kind, ObjKind::Mat);
    EXPECT_EQ(store.count(), 1u);
    store.erase(id);
    EXPECT_FALSE(store.has(id));
}

TEST(ObjectStore, IdsUniqueAcrossStoresSharingCounter)
{
    osim::Kernel kernel;
    osim::Process &a = kernel.spawn("a");
    osim::Process &b = kernel.spawn("b");
    uint64_t counter = 0;
    ObjectStore sa(kernel, a.pid(), &counter);
    ObjectStore sb(kernel, b.pid(), &counter);
    uint64_t ida = sa.putBytes(a.space().alloc(8), 8);
    uint64_t idb = sb.putBytes(b.space().alloc(8), 8);
    EXPECT_NE(ida, idb);
}

TEST(ObjectStore, SerializeMaterializePreservesIdAndData)
{
    osim::Kernel kernel;
    osim::Process &a = kernel.spawn("a");
    osim::Process &b = kernel.spawn("b");
    uint64_t counter = 0;
    ObjectStore sa(kernel, a.pid(), &counter);
    ObjectStore sb(kernel, b.pid(), &counter);

    MatDesc m{2, 2, 1, a.space().alloc(4)};
    a.space().writeValue<uint32_t>(m.addr, 0xaabbccdd);
    uint64_t id = sa.putMat(m, "img");

    std::vector<uint8_t> bytes = sa.serialize(id);
    sb.materialize(id, ObjKind::Mat, bytes, "img");
    EXPECT_TRUE(sb.has(id));
    EXPECT_EQ(
        b.space().readValue<uint32_t>(sb.mat(id).addr), 0xaabbccddu);
}

TEST(ObjectStore, WrongKindAccessPanics)
{
    osim::Kernel kernel;
    osim::Process &proc = kernel.spawn("p");
    uint64_t counter = 0;
    ObjectStore store(kernel, proc.pid(), &counter);
    uint64_t id = store.putBytes(proc.space().alloc(8), 8);
    EXPECT_ANY_THROW(store.mat(id));
    EXPECT_ANY_THROW(store.tensor(id));
}

TEST(ImageFormat, EncodeDecodeRoundTrip)
{
    std::vector<uint8_t> pixels = synthPixels(5, 7, 3, 9);
    std::vector<uint8_t> file = encodeImageFile(5, 7, 3, pixels);
    DecodedImage img = decodeImageFile(file);
    EXPECT_EQ(img.rows, 5u);
    EXPECT_EQ(img.cols, 7u);
    EXPECT_EQ(img.channels, 3u);
    EXPECT_EQ(img.pixels, pixels);
    EXPECT_TRUE(img.trailer.empty());
    EXPECT_TRUE(looksLikeImageFile(file));
}

TEST(ImageFormat, BadMagicRejected)
{
    std::vector<uint8_t> junk(32, 0x5a);
    EXPECT_ANY_THROW(decodeImageFile(junk));
    EXPECT_FALSE(looksLikeImageFile(junk));
}

TEST(ImageFormat, TruncatedPixelsRejected)
{
    std::vector<uint8_t> pixels = synthPixels(4, 4, 1, 0);
    std::vector<uint8_t> file = encodeImageFile(4, 4, 1, pixels);
    file.resize(file.size() - 5);
    EXPECT_ANY_THROW(decodeImageFile(file));
}

TEST(ImageFormat, ExploitTrailerSurvivesEncode)
{
    ExploitPayload payload;
    payload.kind = PayloadKind::OobWrite;
    payload.cve = "CVE-2017-12597";
    payload.targetAddr = 0x4000;
    payload.writeData = {1, 2, 3};
    std::vector<uint8_t> pixels = synthPixels(4, 4, 1, 0);
    std::vector<uint8_t> file =
        encodeImageFile(4, 4, 1, pixels, payload);
    DecodedImage img = decodeImageFile(file);
    auto decoded = decodePayload(img.trailer);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->cve, "CVE-2017-12597");
    EXPECT_EQ(decoded->targetAddr, 0x4000u);
    EXPECT_EQ(decoded->writeData, (std::vector<uint8_t>{1, 2, 3}));
}

TEST(Payload, CodecRoundTripAllFields)
{
    ExploitPayload p;
    p.kind = PayloadKind::Exfiltrate;
    p.cve = "CVE-2020-10378";
    p.leakAddr = 0xbeef000;
    p.leakLen = 128;
    p.dest = "attacker.example";
    p.forkCount = 3;
    auto back = decodePayload(encodePayload(p));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->kind, PayloadKind::Exfiltrate);
    EXPECT_EQ(back->cve, p.cve);
    EXPECT_EQ(back->leakAddr, p.leakAddr);
    EXPECT_EQ(back->leakLen, p.leakLen);
    EXPECT_EQ(back->dest, p.dest);
    EXPECT_EQ(back->forkCount, p.forkCount);
}

TEST(Payload, GarbageIsNotAPayload)
{
    EXPECT_FALSE(decodePayload({}).has_value());
    EXPECT_FALSE(decodePayload({1, 2, 3}).has_value());
    std::vector<uint8_t> pixels = synthPixels(2, 2, 1, 1);
    EXPECT_FALSE(decodePayload(pixels).has_value());
}

TEST(Payload, KindNames)
{
    EXPECT_STREQ(payloadKindName(PayloadKind::OobWrite), "oob-write");
    EXPECT_STREQ(payloadKindName(PayloadKind::Dos), "dos");
    EXPECT_STREQ(payloadKindName(PayloadKind::ForkBomb), "fork-bomb");
}

TEST(ApiTypes, ClassifyFlowOpsRules)
{
    using K = StorageKind;
    EXPECT_EQ(classifyFlowOps({{K::Mem, K::File, false}}),
              ApiType::Loading);
    EXPECT_EQ(classifyFlowOps({{K::Mem, K::Dev, false}}),
              ApiType::Loading);
    EXPECT_EQ(classifyFlowOps({{K::Mem, K::Mem, false}}),
              ApiType::Processing);
    EXPECT_EQ(classifyFlowOps({{K::File, K::Mem, false}}),
              ApiType::Storing);
    EXPECT_EQ(classifyFlowOps({{K::Gui, K::Mem, false}}),
              ApiType::Visualizing);
    EXPECT_EQ(classifyFlowOps({{K::Mem, K::Gui, false}}),
              ApiType::Visualizing);
    // GUI dominates mixed op lists.
    EXPECT_EQ(classifyFlowOps({{K::Mem, K::Mem, false},
                               {K::Gui, K::Mem, false}}),
              ApiType::Visualizing);
    EXPECT_EQ(classifyFlowOps({}), ApiType::Unknown);
}

TEST(ApiTypes, Names)
{
    EXPECT_STREQ(apiTypeName(ApiType::Loading), "Data Loading");
    EXPECT_STREQ(apiTypeShortName(ApiType::Storing), "ST");
    EXPECT_STREQ(storageKindName(StorageKind::Dev), "DEV");
    EXPECT_EQ(flowOpName({StorageKind::Mem, StorageKind::File, false}),
              "W(MEM, R(FILE))");
    EXPECT_STREQ(frameworkName(Framework::OpenCV), "OpenCV");
}

} // namespace
} // namespace freepart::fw
