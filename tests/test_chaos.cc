/**
 * @file
 * Tests for the cluster chaos-and-recovery layer: the extended fault
 * injector (stall / slow-down magnitudes), seeded ChaosSchedule
 * generation, the HealthMonitor state machine, and the ShardRouter's
 * open-loop invokeAt path — hedged attempts, deadline and queue-depth
 * admission control, degraded replica reads, kill/rejoin recovery,
 * and byte-identical determinism under a fixed chaos seed.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/runtime.hh"
#include "shard/chaos.hh"
#include "shard/health_monitor.hh"
#include "shard/shard_router.hh"
#include "util/logging.hh"

namespace freepart::shard {
namespace {

// ---- Fault injector magnitudes --------------------------------------

TEST(ClusterFaults, QueryFireCarriesStallAndSlowMagnitudes)
{
    osim::FaultInjector injector(42);
    osim::FaultSpec stall;
    stall.point = osim::FaultPoint::ShardAdmission;
    stall.action = osim::FaultAction::Stall;
    stall.pid = 3; // shard slot 2
    stall.stallTime = 750'000;
    injector.schedule(stall);
    osim::FaultSpec slow;
    slow.point = osim::FaultPoint::ClusterTransfer;
    slow.action = osim::FaultAction::SlowDown;
    slow.slowFactor = 4.5;
    injector.schedule(slow);

    // Wrong pid: no fire.
    osim::FaultFire miss =
        injector.queryFire(osim::FaultPoint::ShardAdmission, 1);
    EXPECT_EQ(miss.action, osim::FaultAction::None);

    osim::FaultFire hit =
        injector.queryFire(osim::FaultPoint::ShardAdmission, 3);
    EXPECT_EQ(hit.action, osim::FaultAction::Stall);
    EXPECT_EQ(hit.stallTime, 750'000u);

    osim::FaultFire xfer =
        injector.queryFire(osim::FaultPoint::ClusterTransfer, 9);
    EXPECT_EQ(xfer.action, osim::FaultAction::SlowDown);
    EXPECT_DOUBLE_EQ(xfer.slowFactor, 4.5);

    EXPECT_STREQ(faultPointName(osim::FaultPoint::ShardAdmission),
                 "shard-admission");
    EXPECT_STREQ(faultActionName(osim::FaultAction::Stall), "stall");
}

// ---- ChaosSchedule ----------------------------------------------------

TEST(ChaosSchedule, GenerateIsDeterministicPerSeed)
{
    ChaosSchedule a = ChaosSchedule::generate(7, 4, 400, 0.1);
    ChaosSchedule b = ChaosSchedule::generate(7, 4, 400, 0.1);
    ASSERT_EQ(a.specs.size(), b.specs.size());
    for (size_t i = 0; i < a.specs.size(); ++i) {
        EXPECT_EQ(a.specs[i].point, b.specs[i].point);
        EXPECT_EQ(a.specs[i].action, b.specs[i].action);
        EXPECT_EQ(a.specs[i].pid, b.specs[i].pid);
        EXPECT_EQ(a.specs[i].stallTime, b.specs[i].stallTime);
        EXPECT_DOUBLE_EQ(a.specs[i].slowFactor, b.specs[i].slowFactor);
        EXPECT_DOUBLE_EQ(a.specs[i].probability,
                         b.specs[i].probability);
    }
    ASSERT_EQ(a.events.size(), b.events.size());
    for (size_t i = 0; i < a.events.size(); ++i) {
        EXPECT_EQ(a.events[i].atCall, b.events[i].atCall);
        EXPECT_EQ(a.events[i].shard, b.events[i].shard);
        EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    }

    // A different seed reshuffles the plan.
    ChaosSchedule c = ChaosSchedule::generate(8, 4, 400, 0.1);
    bool differs = c.specs.size() != a.specs.size() ||
                   c.events.size() != a.events.size();
    for (size_t i = 0; !differs && i < a.specs.size(); ++i)
        differs = a.specs[i].stallTime != c.specs[i].stallTime ||
                  a.specs[i].slowFactor != c.specs[i].slowFactor;
    for (size_t i = 0; !differs && i < a.events.size(); ++i)
        differs = a.events[i].atCall != c.events[i].atCall ||
                  a.events[i].shard != c.events[i].shard;
    EXPECT_TRUE(differs);
}

TEST(ChaosSchedule, ShapeMatchesContract)
{
    ChaosSchedule plan = ChaosSchedule::generate(11, 4, 400, 0.1);
    // Four degradation specs per shard, at the cluster fault points,
    // each pinned to its shard slot.
    EXPECT_EQ(plan.specs.size(), 16u);
    for (const osim::FaultSpec &spec : plan.specs) {
        EXPECT_TRUE(spec.point == osim::FaultPoint::ShardAdmission ||
                    spec.point == osim::FaultPoint::ClusterTransfer);
        EXPECT_GE(spec.pid, 1u);
        EXPECT_LE(spec.pid, 4u);
        if (spec.action == osim::FaultAction::Stall) {
            EXPECT_GT(spec.stallTime, 0u);
        }
        if (spec.action == osim::FaultAction::SlowDown) {
            EXPECT_GT(spec.slowFactor, 1.0);
        }
    }
    // Every kill is paired with a later rejoin of the same shard,
    // and events are sorted by call index.
    ASSERT_FALSE(plan.events.empty());
    int open = 0;
    uint64_t last = 0;
    for (const ChaosEvent &event : plan.events) {
        EXPECT_GE(event.atCall, last);
        last = event.atCall;
        if (event.kind == ChaosEventKind::ShardKill)
            ++open;
        else
            --open;
        EXPECT_GE(open, 0);
        EXPECT_LE(open, 1); // at most one generated window open
    }
    EXPECT_EQ(open, 0);

    // Rate 0 = no chaos at all.
    EXPECT_EQ(ChaosSchedule::generate(11, 4, 400, 0.0).planSize(), 0u);
}

// ---- HealthMonitor ----------------------------------------------------

TEST(HealthMonitor, MissedHeartbeatsEscalateSuspectThenDead)
{
    HealthPolicy policy;
    HealthMonitor monitor(policy, 2);
    EXPECT_EQ(monitor.classify(0), ShardHealth::Healthy);

    osim::SimTime now = policy.heartbeatInterval;
    ASSERT_TRUE(monitor.probeDue(0, now));
    monitor.recordProbe(0, now, false);
    EXPECT_EQ(monitor.classify(0), ShardHealth::Healthy);
    monitor.recordProbe(0, now + policy.heartbeatInterval, false);
    EXPECT_EQ(monitor.classify(0), ShardHealth::Suspect);
    for (uint32_t i = 0; i < policy.missedForDead; ++i)
        monitor.recordProbe(0, now + (i + 2) * policy.heartbeatInterval,
                            false);
    EXPECT_EQ(monitor.classify(0), ShardHealth::Dead);
    EXPECT_EQ(monitor.suspectTransitions(), 1u);
    EXPECT_EQ(monitor.deadTransitions(), 1u);

    // The other shard is untouched; a good probe resets shard 0.
    EXPECT_EQ(monitor.classify(1), ShardHealth::Healthy);
    monitor.recordProbe(0, now * 10, true);
    EXPECT_EQ(monitor.classify(0), ShardHealth::Healthy);
}

TEST(HealthMonitor, SlowEwmaAndCrashChurnRaiseSuspicion)
{
    HealthPolicy policy;
    HealthMonitor monitor(policy, 2);
    // Establish a fast baseline on shard 1 and a slow EWMA on 0.
    for (int i = 0; i < 20; ++i) {
        monitor.recordSuccess(1, i * 1000, 30'000);
        monitor.recordSuccess(0, i * 1000,
                              30'000 * 40); // 40x the baseline
    }
    EXPECT_GT(monitor.latencyEwma(0), monitor.latencyEwma(1));
    EXPECT_EQ(monitor.classify(1), ShardHealth::Healthy);
    EXPECT_EQ(monitor.classify(0), ShardHealth::Suspect);

    // Supervisor crash churn alone suspects a shard; a success
    // clears the crash count.
    for (uint32_t i = 0; i < policy.crashesForSuspect; ++i)
        monitor.recordCrash(1);
    EXPECT_EQ(monitor.classify(1), ShardHealth::Suspect);
    monitor.recordSuccess(1, 100'000, 30'000);
    EXPECT_EQ(monitor.classify(1), ShardHealth::Healthy);
}

// ---- Router fixture ---------------------------------------------------

struct Env {
    Env() : registry(fw::buildFullRegistry()), categorizer(registry)
    {
        cats = categorizer.categorizeAll();
    }

    std::unique_ptr<ShardRouter>
    makeRouter(ShardRouterConfig config)
    {
        return std::make_unique<ShardRouter>(
            registry, cats, core::PartitionPlan::freePartDefault(),
            std::move(config),
            [](osim::Kernel &kernel) { fw::seedFixtureFiles(kernel); });
    }

    fw::ApiRegistry registry;
    analysis::HybridCategorizer categorizer;
    analysis::Categorization cats;
};

Env &
env()
{
    static Env instance;
    return instance;
}

/** First routing key (from base) owned by the given shard. */
uint64_t
keyOwnedBy(const ShardRouter &router, uint32_t shard,
           uint64_t base = 1000)
{
    for (uint64_t key = base; key < base + 100000; ++key)
        if (router.ownerShardOf(key) == shard)
            return key;
    ADD_FAILURE() << "no key found for shard " << shard;
    return 0;
}

ipc::ValueList
imreadArgs()
{
    return {ipc::Value(std::string("/data/test.fpim"))};
}

// ---- invokeAt: hedging, shedding, degradation ------------------------

TEST(ChaosRouter, StalledPrimaryIsHedgedToHealthyPeer)
{
    ShardRouterConfig config;
    config.shardCount = 2;
    auto router = env().makeRouter(config);
    uint64_t key = keyOwnedBy(*router, 0);

    ChaosSchedule plan;
    plan.seed = 1;
    osim::FaultSpec stall;
    stall.point = osim::FaultPoint::ShardAdmission;
    stall.action = osim::FaultAction::Stall;
    stall.pid = 1; // shard slot 0
    stall.count = 1;
    stall.stallTime = 50'000'000; // 50 ms freeze
    plan.specs.push_back(stall);
    router->applyChaosSchedule(plan);

    CallOptions opts;
    opts.arrival = 0;
    opts.dedupToken = 101;
    RoutedCall call = router->invokeAt(key, "cv2.imread",
                                       imreadArgs(), opts);
    ASSERT_TRUE(call.result.ok) << call.result.error;
    EXPECT_TRUE(call.hedged);
    EXPECT_EQ(call.shard, 1u); // served by the healthy peer
    EXPECT_EQ(router->stats().hedgedCalls, 1u);
    EXPECT_EQ(router->stats().chaosStalls, 1u);

    // A resubmit of the acked token collapses in the dedup cache.
    opts.arrival = 1000;
    RoutedCall dup = router->invokeAt(key, "cv2.imread",
                                      imreadArgs(), opts);
    EXPECT_TRUE(dup.deduped);
    EXPECT_EQ(router->stats().dedupHits, 1u);
}

TEST(ChaosRouter, StallDrivesMonitorDrainAndRejoin)
{
    ShardRouterConfig config;
    config.shardCount = 2;
    config.hedgeRequests = false; // keep routing to the stalled owner
    config.degradedReads = false;
    auto router = env().makeRouter(config);
    uint64_t k0 = keyOwnedBy(*router, 0);
    uint64_t k1 = keyOwnedBy(*router, 1);

    ChaosSchedule plan;
    plan.seed = 2;
    osim::FaultSpec stall;
    stall.point = osim::FaultPoint::ShardAdmission;
    stall.action = osim::FaultAction::Stall;
    stall.pid = 1;
    stall.count = 1;
    stall.stallTime = 3'000'000; // 3 ms >> dead threshold (1 ms)
    plan.specs.push_back(stall);
    router->applyChaosSchedule(plan);

    osim::SimTime step = config.health.heartbeatInterval;
    CallOptions opts;
    uint64_t token = 500;
    // First call arms the stall on shard 0; subsequent arrivals walk
    // the heartbeat clock until the monitor declares it dead.
    opts.arrival = 0;
    opts.dedupToken = ++token;
    router->invokeAt(k0, "cv2.imread", imreadArgs(), opts);
    bool drained = false;
    for (int i = 1; i <= 8 && !drained; ++i) {
        opts.arrival = i * step;
        opts.dedupToken = ++token;
        router->invokeAt(k1, "cv2.imread", imreadArgs(), opts);
        drained = !router->ring().contains(0);
    }
    EXPECT_TRUE(drained);
    EXPECT_GE(router->stats().deadTransitions, 1u);
    EXPECT_GT(router->stats().probesMissed, 0u);
    EXPECT_GT(router->stats().detectionTime, 0u);

    // Once the stall passes, probes succeed and the shard rejoins.
    bool rejoined = false;
    for (int i = 0; i < 8 && !rejoined; ++i) {
        opts.arrival = 4'000'000 + i * step;
        opts.dedupToken = ++token;
        router->invokeAt(k1, "cv2.imread", imreadArgs(), opts);
        rejoined = router->ring().contains(0);
    }
    EXPECT_TRUE(rejoined);
    EXPECT_GE(router->stats().shardsRejoined, 1u);
}

TEST(ChaosRouter, OverloadShedsWhenNoAlternative)
{
    ShardRouterConfig config;
    config.shardCount = 1;
    config.maxQueueDepth = 1;
    config.hedgeRequests = false;
    config.degradedReads = false;
    auto router = env().makeRouter(config);
    uint64_t key = keyOwnedBy(*router, 0);

    CallOptions opts;
    opts.arrival = 0; // closed fist of simultaneous arrivals
    uint64_t shed = 0;
    for (int i = 0; i < 12; ++i) {
        opts.dedupToken = 900 + i;
        RoutedCall call = router->invokeAt(key, "cv2.imread",
                                           imreadArgs(), opts);
        if (call.shed) {
            ++shed;
            EXPECT_EQ(call.errorKind, RouteError::Overloaded);
            EXPECT_FALSE(call.result.ok);
        }
    }
    EXPECT_GT(shed, 0u);
    EXPECT_EQ(router->stats().shedCalls, shed);
    EXPECT_GT(router->stats().queueDepthPeak, 1u);
}

TEST(ChaosRouter, OverloadDegradesToReplicaServingPeer)
{
    ShardRouterConfig config;
    config.shardCount = 2;
    config.maxQueueDepth = 1;
    config.hedgeRequests = false;
    auto router = env().makeRouter(config);
    uint64_t key = keyOwnedBy(*router, 0);

    CallOptions opts;
    opts.arrival = 0;
    uint64_t degraded = 0;
    uint64_t shed = 0;
    for (int i = 0; i < 12; ++i) {
        opts.dedupToken = 1900 + i;
        RoutedCall call = router->invokeAt(key, "cv2.imread",
                                           imreadArgs(), opts);
        if (!call.result.ok) {
            // Both shards saturated: the call must shed cleanly, not
            // fail some other way.
            EXPECT_TRUE(call.shed);
            EXPECT_EQ(call.errorKind, RouteError::Overloaded);
            ++shed;
            continue;
        }
        if (call.degraded) {
            ++degraded;
            EXPECT_EQ(call.shard, 1u);
        }
    }
    // The owner saturates first, so some calls must have spilled to
    // the replica-serving peer before the peer saturated too.
    EXPECT_GT(degraded, 0u);
    EXPECT_EQ(router->stats().degradedCalls, degraded);
    EXPECT_EQ(router->stats().shedCalls, shed);
}

TEST(ChaosRouter, InfeasibleDeadlineIsShedBeforeExecution)
{
    ShardRouterConfig config;
    config.shardCount = 1;
    config.hedgeRequests = false;
    config.degradedReads = false;
    config.defaultDeadline = 1; // 1 ns: nothing fits
    auto router = env().makeRouter(config);
    uint64_t key = keyOwnedBy(*router, 0);

    CallOptions opts;
    opts.arrival = 0;
    opts.dedupToken = 3000;
    RoutedCall call = router->invokeAt(key, "cv2.imread",
                                       imreadArgs(), opts);
    EXPECT_FALSE(call.result.ok);
    EXPECT_TRUE(call.shed);
    EXPECT_EQ(call.errorKind, RouteError::DeadlineExceeded);

    // A generous per-call deadline overrides the router default.
    opts.deadline = 1'000'000'000;
    opts.dedupToken = 3001;
    RoutedCall fine = router->invokeAt(key, "cv2.imread",
                                       imreadArgs(), opts);
    EXPECT_TRUE(fine.result.ok) << fine.result.error;
    EXPECT_FALSE(fine.deadlineMissed);
}

// ---- Kill / rejoin recovery ------------------------------------------

TEST(ChaosRouter, KillAndRejoinEventsRecoverWithZeroLoss)
{
    ShardRouterConfig config;
    config.shardCount = 3;
    auto router = env().makeRouter(config);
    uint64_t keys[3] = {keyOwnedBy(*router, 0), keyOwnedBy(*router, 1),
                        keyOwnedBy(*router, 2)};

    // Objects on every shard before the chaos starts.
    std::vector<uint64_t> objects;
    CallOptions opts;
    uint64_t token = 5000;
    osim::SimTime clock = 0;
    for (int s = 0; s < 3; ++s) {
        opts.arrival = clock += 50'000;
        opts.dedupToken = ++token;
        RoutedCall call = router->invokeAt(keys[s], "cv2.imread",
                                           imreadArgs(), opts);
        ASSERT_TRUE(call.result.ok) << call.result.error;
        objects.push_back(call.result.values[0].asRef().objectId);
    }

    ChaosSchedule plan;
    plan.seed = 3;
    plan.events.push_back({4, 0, ChaosEventKind::ShardKill});
    plan.events.push_back({8, 0, ChaosEventKind::ShardRejoin});
    router->applyChaosSchedule(plan);

    // Keep touching every object through the kill and the rejoin;
    // shard 0's object must survive via its replica.
    uint64_t failed = 0;
    for (int round = 0; round < 4; ++round) {
        for (int s = 0; s < 3; ++s) {
            opts.arrival = clock += 50'000;
            opts.dedupToken = ++token;
            RoutedCall call = router->invokeAt(
                keys[s], "cv2.flip",
                {ipc::Value(ipc::ObjectRef{0, objects[s]})}, opts);
            if (!call.result.ok)
                ++failed;
        }
    }
    EXPECT_EQ(failed, 0u);
    const ClusterStats &stats = router->stats();
    EXPECT_EQ(stats.shardsKilled, 1u);
    EXPECT_GE(stats.shardsRejoined, 1u);
    EXPECT_GE(stats.replicaRestores, 1u);
    EXPECT_EQ(stats.lostObjects, 0u);
    EXPECT_TRUE(router->shardLive(0));
    EXPECT_TRUE(router->ring().contains(0));
}

// ---- Determinism ------------------------------------------------------

TEST(ChaosRouter, SameSeedReplaysByteIdentically)
{
    auto run = [&](uint64_t seed) {
        ShardRouterConfig config;
        config.shardCount = 3;
        auto router = env().makeRouter(config);
        router->applyChaosSchedule(
            ChaosSchedule::generate(seed, 3, 60, 0.3));
        std::vector<osim::SimTime> latencies;
        CallOptions opts;
        osim::SimTime clock = 0;
        for (int i = 0; i < 60; ++i) {
            opts.arrival = clock += 80'000;
            opts.dedupToken = 7000 + i;
            opts.deadline = 20'000'000;
            RoutedCall call = router->invokeAt(
                1000 + (i % 7), "cv2.imread", imreadArgs(), opts);
            latencies.push_back(call.result.ok ? call.latency : 0);
        }
        const ClusterStats &stats = router->stats();
        return std::make_tuple(latencies, stats.callsOk,
                               stats.callsFailed, stats.shedCalls,
                               stats.hedgedCalls, stats.chaosStalls,
                               stats.chaosSlowCalls,
                               stats.messagesDropped, stats.makespan);
    };
    auto a = run(99);
    auto b = run(99);
    EXPECT_EQ(a, b);
    // And the chaos actually did something.
    EXPECT_GT(std::get<1>(a), 0u);
}

// ---- Structured lost-object error (legacy path) ----------------------

TEST(ChaosRouter, LostObjectSurfacesStructuredError)
{
    ShardRouterConfig config;
    config.shardCount = 2;
    config.replicateObjects = false;
    auto router = env().makeRouter(config);
    uint64_t k0 = keyOwnedBy(*router, 0);
    uint64_t k1 = keyOwnedBy(*router, 1);

    uint64_t id = router->createMat(k0, 16, 16, 3, 7, "doomed");
    router->killShard(0);
    RoutedCall call = router->invoke(
        k1, "cv2.flip", {ipc::Value(ipc::ObjectRef{0, id})});
    EXPECT_FALSE(call.result.ok);
    EXPECT_EQ(call.errorKind, RouteError::ObjectLost);
    EXPECT_EQ(call.lostObjectId, id);
    EXPECT_EQ(router->stats().lostObjects, 1u);
    EXPECT_STREQ(routeErrorName(call.errorKind), "object-lost");

    // Same structured surface on the open-loop path.
    CallOptions opts;
    opts.arrival = 1'000'000;
    opts.dedupToken = 8000;
    RoutedCall open = router->invokeAt(
        k1, "cv2.flip", {ipc::Value(ipc::ObjectRef{0, id})}, opts);
    EXPECT_FALSE(open.result.ok);
    EXPECT_EQ(open.errorKind, RouteError::ObjectLost);
    EXPECT_EQ(open.lostObjectId, id);
    EXPECT_EQ(router->stats().lostObjects, 2u);
}

// ---- Config validation ------------------------------------------------

TEST(RouterConfigValidation, RejectsBrokenCombinations)
{
    auto build = [&](ShardRouterConfig config) {
        config.shardCount = 1; // keep construction cheap
        env().makeRouter(std::move(config));
    };

    ShardRouterConfig ok;
    EXPECT_NO_THROW(build(ok));

    ShardRouterConfig vnodes;
    vnodes.vnodesPerShard = 0;
    EXPECT_THROW(build(vnodes), util::FatalError);

    ShardRouterConfig dedup;
    dedup.dedupEntries = 0;
    EXPECT_THROW(build(dedup), util::FatalError);

    ShardRouterConfig unrecoverable;
    unrecoverable.migrationMaxBytes = 0;
    unrecoverable.replicateObjects = false;
    EXPECT_THROW(build(unrecoverable), util::FatalError);
    // Either mechanism alone is a legal layout.
    unrecoverable.replicateObjects = true;
    EXPECT_NO_THROW(build(unrecoverable));

    ShardRouterConfig hedge;
    hedge.hedgeRequests = true;
    hedge.retryBudget = 0;
    EXPECT_THROW(build(hedge), util::FatalError);

    ShardRouterConfig queue;
    queue.maxQueueDepth = 0;
    EXPECT_THROW(build(queue), util::FatalError);

    ShardRouterConfig alpha;
    alpha.health.ewmaAlpha = 0.0;
    EXPECT_THROW(build(alpha), util::FatalError);
    alpha.health.ewmaAlpha = 1.5;
    EXPECT_THROW(build(alpha), util::FatalError);

    ShardRouterConfig thresholds;
    thresholds.health.missedForSuspect = 9;
    thresholds.health.missedForDead = 3;
    EXPECT_THROW(build(thresholds), util::FatalError);

    ShardRouterConfig net;
    net.netPerByte = -0.5;
    EXPECT_THROW(build(net), util::FatalError);
}

} // namespace
} // namespace freepart::shard
