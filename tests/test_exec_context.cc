/**
 * @file
 * Tests for ExecContext and the Invoker: device-fd caching (the
 * init-only syscall property), allocation helpers, trace sinks, and
 * the argument synthesizer's edge cases.
 */

#include <gtest/gtest.h>

#include "fw/image_format.hh"
#include "fw/invoker.hh"
#include "osim/kernel.hh"

namespace freepart::fw {
namespace {

struct CtxFixture : ::testing::Test {
    CtxFixture()
        : kernel(), proc(kernel.spawn("ctx")),
          store(kernel, proc.pid(), &counter),
          ctx(kernel, proc, store, devices, 3)
    {
        seedFixtureFiles(kernel);
    }

    osim::Kernel kernel;
    osim::Process &proc;
    uint64_t counter = 0;
    ObjectStore store;
    DeviceFds devices;
    ExecContext ctx;
};

TEST_F(CtxFixture, GuiFdConnectsExactlyOnce)
{
    osim::Fd first = ctx.guiFd();
    osim::Fd second = ctx.guiFd();
    EXPECT_EQ(first, second);
    EXPECT_EQ(proc.syscallCounts[static_cast<size_t>(
                  osim::Syscall::Connect)],
              1u);
    EXPECT_EQ(proc.syscallCounts[static_cast<size_t>(
                  osim::Syscall::Socket)],
              1u);
}

TEST_F(CtxFixture, CameraFdOpensOnce)
{
    osim::Fd first = ctx.cameraFd();
    EXPECT_EQ(ctx.cameraFd(), first);
    EXPECT_EQ(proc.syscallCounts[static_cast<size_t>(
                  osim::Syscall::Openat)],
              1u);
}

TEST_F(CtxFixture, NetFdConnectsOnceAndCaches)
{
    osim::Fd first = ctx.netFd("mirror.example");
    EXPECT_EQ(ctx.netFd("mirror.example"), first);
    EXPECT_EQ(proc.syscallCounts[static_cast<size_t>(
                  osim::Syscall::Connect)],
              1u);
}

TEST_F(CtxFixture, DeviceFdsSharedAcrossContexts)
{
    // A second context bound to the same DeviceFds reuses the socket
    // (the per-process cache that makes connect init-only).
    osim::Fd first = ctx.guiFd();
    ExecContext other(kernel, proc, store, devices, 3);
    EXPECT_EQ(other.guiFd(), first);
}

TEST_F(CtxFixture, AllocMatIsWritableAndSized)
{
    MatDesc mat = ctx.allocMat(5, 7, 2, "m");
    EXPECT_EQ(mat.byteLen(), 70u);
    EXPECT_NO_THROW(
        proc.space().writeValue<uint8_t>(mat.addr + 69, 1));
}

TEST_F(CtxFixture, AllocTensorIsZeroInitialized)
{
    TensorDesc t = ctx.allocTensor({2, 3}, "t");
    auto values = tensorRead(proc.space(), t);
    for (float v : values)
        EXPECT_EQ(v, 0.f);
}

TEST_F(CtxFixture, TraceSinkRecordsOps)
{
    FlowTrace trace;
    ctx.setTraceSink(&trace);
    ctx.traceOp(StorageKind::Mem, StorageKind::File);
    ctx.traceOp(StorageKind::Gui, StorageKind::Mem);
    ctx.setTraceSink(nullptr);
    ctx.traceOp(StorageKind::Mem, StorageKind::Mem); // not recorded
    ASSERT_EQ(trace.ops.size(), 2u);
    EXPECT_EQ(trace.ops[0].src, StorageKind::File);
    EXPECT_EQ(trace.ops[1].dst, StorageKind::Gui);
}

TEST_F(CtxFixture, ChargeComputeAdvancesClock)
{
    osim::SimTime before = kernel.now();
    ctx.chargeCompute(1000000);
    EXPECT_GT(kernel.now(), before);
}

TEST_F(CtxFixture, PartitionIsVisibleToBodies)
{
    EXPECT_EQ(ctx.partition(), 3u);
}

TEST_F(CtxFixture, InvokerPreparesArgsForEveryImplementedApi)
{
    ApiRegistry reg = buildFullRegistry();
    Invoker invoker(kernel, store, 3);
    for (const ApiDescriptor &api : reg.all()) {
        SCOPED_TRACE(api.name);
        ASSERT_TRUE(invoker.canInvoke(api));
        ipc::ValueList args = invoker.prepareArgs(api, 7);
        // Every Ref argument resolves locally with the configured
        // partition id.
        for (const ipc::Value &value : args) {
            if (value.kind() != ipc::Value::Kind::Ref)
                continue;
            EXPECT_EQ(value.asRef().ownerPartition, 3u);
            EXPECT_TRUE(store.has(value.asRef().objectId));
        }
    }
}

TEST_F(CtxFixture, InvokerSeedsVaryContent)
{
    ApiRegistry reg = buildFullRegistry();
    Invoker invoker(kernel, store, 0);
    const ApiDescriptor &blur = reg.require("cv2.GaussianBlur");
    ipc::ValueList a = invoker.prepareArgs(blur, 1);
    ipc::ValueList b = invoker.prepareArgs(blur, 2);
    const MatDesc &ma = store.mat(a[0].asRef().objectId);
    const MatDesc &mb = store.mat(b[0].asRef().objectId);
    std::vector<uint8_t> pa(ma.byteLen()), pb(mb.byteLen());
    proc.space().read(ma.addr, pa.data(), pa.size());
    proc.space().read(mb.addr, pb.data(), pb.size());
    EXPECT_NE(pa, pb);
}

TEST_F(CtxFixture, FixtureFilesAreDecodable)
{
    TestFixture fixture;
    const auto &bytes = kernel.vfs().getFile(fixture.imagePath);
    DecodedImage img = decodeImageFile(bytes);
    EXPECT_EQ(img.rows, fixture.rows);
    EXPECT_EQ(img.cols, fixture.cols);
    EXPECT_EQ(img.channels, fixture.channels);
    EXPECT_TRUE(kernel.vfs().exists(fixture.modelPath));
    EXPECT_TRUE(kernel.vfs().exists(fixture.csvPath));
}

TEST_F(CtxFixture, CustomFixtureDimensionsRespected)
{
    osim::Kernel k2;
    TestFixture fixture;
    fixture.rows = 10;
    fixture.cols = 20;
    fixture.channels = 1;
    seedFixtureFiles(k2, fixture);
    DecodedImage img =
        decodeImageFile(k2.vfs().getFile(fixture.imagePath));
    EXPECT_EQ(img.rows, 10u);
    EXPECT_EQ(img.cols, 20u);
    EXPECT_EQ(img.channels, 1u);
}

} // namespace
} // namespace freepart::fw
