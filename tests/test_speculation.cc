/**
 * @file
 * Speculative execution past protection flips (DESIGN.md §15):
 * byte-identity and determinism of speculative replays, the
 * dirty-epoch rollback path (forced-conflict squash, nested pending
 * flips, speculation across an agent restart), and the pre-PR
 * pinning baseline proving that with both gates off the runtime
 * reproduces the Table 9 accounting and all 23 app digests
 * bit-for-bit.
 */

#include <gtest/gtest.h>

#include "apps/app_models.hh"
#include "apps/workload.hh"
#include "core/runtime.hh"
#include "util/checksum.hh"

namespace freepart::core {
namespace {

struct SpecEnv {
    SpecEnv() : registry(fw::buildFullRegistry())
    {
        analysis::HybridCategorizer categorizer(registry);
        cats = categorizer.categorizeAll();
    }

    /** A runtime bundled with the kernel it runs on. */
    struct Rt {
        std::unique_ptr<osim::Kernel> kernel;
        std::unique_ptr<FreePartRuntime> runtime;
        FreePartRuntime *operator->() { return runtime.get(); }
        FreePartRuntime &operator*() { return *runtime; }
    };

    Rt
    makeRuntime(RuntimeConfig config = {})
    {
        Rt rt;
        rt.kernel = std::make_unique<osim::Kernel>();
        fw::seedFixtureFiles(*rt.kernel);
        rt.runtime = std::make_unique<FreePartRuntime>(
            *rt.kernel, registry, cats,
            PartitionPlan::freePartDefault(), config);
        return rt;
    }

    /** Replay one Table 6 app against a fresh runtime. */
    apps::WorkloadResult
    replayApp(size_t model_index, bool pipeline, bool spec)
    {
        apps::WorkloadGenerator::Config wconfig;
        wconfig.imageRows = 64;
        wconfig.imageCols = 64;
        wconfig.tensorDim = 16;
        wconfig.maxRounds = 3;
        wconfig.maxCallsPerRound = 2;
        apps::WorkloadGenerator generator(registry, wconfig);
        kernel = std::make_unique<osim::Kernel>();
        generator.seedInputs(*kernel);
        RuntimeConfig config;
        config.pipelineParallel = pipeline;
        config.speculativeFlips = spec;
        FreePartRuntime runtime(*kernel, registry, cats,
                                PartitionPlan::freePartDefault(),
                                config);
        const apps::AppModel &model =
            apps::appModels().at(model_index);
        return pipeline ? generator.runAsync(runtime, model)
                        : generator.run(runtime, model);
    }

    fw::ApiRegistry registry;
    analysis::Categorization cats;
    std::unique_ptr<osim::Kernel> kernel;
};

SpecEnv &
env()
{
    static SpecEnv instance;
    return instance;
}

ipc::Value
imreadArg()
{
    return ipc::Value(std::string("/data/test.fpim"));
}

ipc::Value
u64(uint64_t v)
{
    return ipc::Value(v);
}

/** Issue an async call and peek its (eagerly produced) first ref. */
ipc::Value
callRef(FreePartRuntime &runtime, const std::string &api,
        ipc::ValueList args)
{
    CallTicket ticket = runtime.invokeAsync(api, std::move(args));
    const ApiResult *res = runtime.peekResult(ticket);
    EXPECT_NE(res, nullptr);
    if (!res)
        return ipc::Value();
    EXPECT_TRUE(res->ok) << res->error;
    if (!res->ok || res->values.empty())
        return ipc::Value();
    return res->values[0];
}

/**
 * Pre-PR baseline for all 23 Table 6 apps with both gates off
 * (pipelineParallel=false, speculativeFlips=false): final-object
 * digest plus the Table 9 accounting (elapsed, IPC messages, bytes
 * transferred, protection flips), captured on the commit preceding
 * the speculation work. The gate-off path must keep reproducing
 * these bit-for-bit.
 */
struct PinnedApp {
    int id;
    uint64_t digest;
    uint64_t hasFinal;
    uint64_t elapsed;
    uint64_t ipcMessages;
    uint64_t bytesTransferred;
    uint64_t protectionFlips;
};

constexpr PinnedApp kPinnedBaseline[] = {
    {1, 10419491173088401866ull, 1, 2121233, 36, 573486, 2},
    {2, 11375247172328803975ull, 1, 975701, 36, 129123, 2},
    {3, 10204070634842719979ull, 1, 980275, 36, 125028, 2},
    {4, 66799739783162451ull, 1, 352059, 16, 50088, 0},
    {5, 5671517318878080712ull, 1, 2176493, 48, 445132, 2},
    {6, 15701432803513851916ull, 1, 1323737, 24, 560482, 2},
    {7, 5671517318878080712ull, 1, 2098193, 36, 419886, 2},
    {8, 11375247172328803975ull, 1, 975403, 36, 129104, 2},
    {9, 8819781630537175346ull, 1, 911115, 36, 68916, 2},
    {10, 8819781630537175346ull, 1, 781479, 30, 79892, 2},
    {11, 17032319491563530885ull, 1, 265386, 12, 17483, 0},
    {12, 15249180925137261220ull, 1, 750108, 36, 23631, 2},
    {13, 763387502086238240ull, 1, 620358, 30, 10970, 2},
    {14, 1546770538989743976ull, 1, 623248, 30, 23043, 2},
    {15, 9180396819245299624ull, 1, 620358, 30, 10970, 2},
    {16, 14819616210041146916ull, 1, 750108, 36, 23631, 2},
    {17, 12552524467909047916ull, 1, 462309, 24, 9027, 1},
    {18, 6965401261650142748ull, 1, 620358, 30, 11008, 2},
    {19, 12552524467909047916ull, 1, 430385, 20, 8125, 1},
    {20, 7982155967305217763ull, 1, 758471, 30, 41594, 2},
    {21, 6956354913011216515ull, 1, 739029, 30, 41620, 2},
    {22, 2478482757173575011ull, 1, 741919, 30, 53628, 2},
    {23, 4287700340724656579ull, 1, 761361, 30, 53592, 2},
};

TEST(Speculation, GatesOffReproducePinnedBaseline)
{
    const auto &models = apps::appModels();
    ASSERT_EQ(models.size(), std::size(kPinnedBaseline));
    for (size_t i = 0; i < models.size(); ++i) {
        const PinnedApp &pin = kPinnedBaseline[i];
        ASSERT_EQ(models[i].id, pin.id);
        apps::WorkloadResult r = env().replayApp(i, false, false);
        EXPECT_EQ(r.finalDigest, pin.digest) << models[i].name;
        EXPECT_EQ(r.hasFinalObject ? 1u : 0u, pin.hasFinal)
            << models[i].name;
        EXPECT_EQ(r.stats.elapsed(), pin.elapsed) << models[i].name;
        EXPECT_EQ(r.stats.ipcMessages, pin.ipcMessages)
            << models[i].name;
        EXPECT_EQ(r.stats.bytesTransferred, pin.bytesTransferred)
            << models[i].name;
        EXPECT_EQ(r.stats.protectionFlips, pin.protectionFlips)
            << models[i].name;
    }
}

TEST(Speculation, GateOffLeavesSpeculationCountersZero)
{
    // Pipeline mode without the speculation gate must not speculate:
    // the pre-PR async semantics (and its Table 9 deltas) stay
    // untouched, and every speculation counter reads zero.
    apps::WorkloadResult sync = env().replayApp(1, false, false);
    apps::WorkloadResult nospec = env().replayApp(1, true, false);
    EXPECT_EQ(sync.finalDigest, nospec.finalDigest);
    EXPECT_EQ(nospec.stats.speculationStarts, 0u);
    EXPECT_EQ(nospec.stats.speculationCommits, 0u);
    EXPECT_EQ(nospec.stats.speculationRollbacks, 0u);
    EXPECT_EQ(nospec.stats.squashedWriteBytes, 0u);
    EXPECT_EQ(nospec.stats.speculativeFetches, 0u);
    EXPECT_EQ(nospec.stats.recoveredBarrierTime, 0u);
}

TEST(Speculation, SpeculativeReplayIsByteIdentical)
{
    // FaceTracker: a multi-round load->process->visualize/store app.
    apps::WorkloadResult sync = env().replayApp(1, false, false);
    apps::WorkloadResult spec = env().replayApp(1, true, true);
    ASSERT_EQ(sync.callsFailed, 0u);
    ASSERT_EQ(spec.callsFailed, 0u);
    EXPECT_EQ(sync.finalDigest, spec.finalDigest);
    EXPECT_GT(spec.stats.speculativeFetches, 0u);
    EXPECT_GT(spec.stats.recoveredBarrierTime, 0u);
    EXPECT_LT(spec.stats.elapsed(), sync.stats.elapsed());
    // The ledger always balances: every speculative call either
    // commits or rolls back.
    EXPECT_EQ(spec.stats.speculationStarts,
              spec.stats.speculationCommits +
                  spec.stats.speculationRollbacks);
}

TEST(Speculation, SpeculativeReplayBeatsBarrierOverlap)
{
    apps::WorkloadResult nospec = env().replayApp(1, true, false);
    apps::WorkloadResult spec = env().replayApp(1, true, true);
    EXPECT_EQ(nospec.finalDigest, spec.finalDigest);
    EXPECT_GT(spec.stats.overlapFraction(),
              nospec.stats.overlapFraction());
    EXPECT_LE(spec.stats.elapsed(), nospec.stats.elapsed());
}

TEST(Speculation, SpeculativeReplayIsDeterministic)
{
    apps::WorkloadResult a = env().replayApp(1, true, true);
    apps::WorkloadResult b = env().replayApp(1, true, true);
    EXPECT_EQ(a.finalDigest, b.finalDigest);
    EXPECT_EQ(a.stats.elapsed(), b.stats.elapsed());
    EXPECT_EQ(a.stats.ipcMessages, b.stats.ipcMessages);
    EXPECT_EQ(a.stats.speculationStarts, b.stats.speculationStarts);
    EXPECT_EQ(a.stats.speculationRollbacks,
              b.stats.speculationRollbacks);
}

/**
 * Run the forced-conflict trace: blur a frame into the chain, fetch
 * it to the host (opens the window under speculativeFlips), then
 * draw into the fetched pre-window object — the write the deferred
 * flip covers. Returns the FNV digest of the final chain bytes.
 */
uint64_t
forcedConflictTrace(FreePartRuntime &runtime, size_t *chain_bytes)
{
    ipc::Value frame = callRef(runtime, "cv2.imread", {imreadArg()});
    ipc::Value chain =
        callRef(runtime, "cv2.GaussianBlur", {frame});
    if (chain.kind() != ipc::Value::Kind::Ref)
        return 0;
    runtime.fetchToHost(chain.asRef());
    if (chain_bytes)
        *chain_bytes =
            runtime.hostStore().serialize(chain.asRef().objectId)
                .size();
    ipc::Value drawn = callRef(
        runtime, "cv2.rectangle",
        {chain, u64(2), u64(2), u64(8), u64(8), u64(255)});
    if (drawn.kind() != ipc::Value::Kind::Ref)
        return 0;
    runtime.fetchToHost(drawn.asRef());
    uint64_t digest = util::fnv1a64(
        runtime.hostStore().serialize(drawn.asRef().objectId));
    runtime.drainAll();
    return digest;
}

TEST(Speculation, ForcedConflictSquashRestoresExactBytes)
{
    RuntimeConfig spec_config;
    spec_config.pipelineParallel = true;
    spec_config.speculativeFlips = true;
    auto spec_rt = env().makeRuntime(spec_config);
    size_t chain_bytes = 0;
    uint64_t spec_digest =
        forcedConflictTrace(*spec_rt, &chain_bytes);
    const RunStats &stats = spec_rt->stats();
    // The draw targeted pre-window data: it must have been squashed
    // (restoring exactly the checkpointed chain bytes) and re-issued.
    EXPECT_EQ(stats.speculationRollbacks, 1u);
    EXPECT_EQ(stats.squashedWriteBytes, chain_bytes);
    EXPECT_GT(chain_bytes, 0u);
    EXPECT_EQ(stats.speculationStarts,
              stats.speculationCommits + stats.speculationRollbacks);

    // The restore-then-re-execute path must leave exactly the bytes
    // the synchronous schedule produces.
    auto sync_rt = env().makeRuntime();
    uint64_t sync_digest = forcedConflictTrace(*sync_rt, nullptr);
    EXPECT_EQ(sync_rt->stats().speculationRollbacks, 0u);
    ASSERT_NE(spec_digest, 0u);
    EXPECT_EQ(spec_digest, sync_digest);
}

TEST(Speculation, NestedPendingFlipsExtendTheWindow)
{
    RuntimeConfig config;
    config.pipelineParallel = true;
    config.speculativeFlips = true;
    auto runtime = env().makeRuntime(config);
    // Pile loads onto the loading agent's timeline so it runs ahead
    // of the host clock, then leave an unprotected variable there:
    // the next state transition has a pending agent-side flip whose
    // quiesce horizon lies in the future.
    runtime->invokeAsync("cv2.imread", {imreadArg()});
    ipc::Value frame = callRef(*runtime, "cv2.imread", {imreadArg()});
    runtime->allocInPartition(0, "loading-scratch", 64);
    EXPECT_FALSE(runtime->speculationActive());
    ipc::Value blurred =
        callRef(*runtime, "cv2.GaussianBlur", {frame});
    // Speculation, not a barrier: the flip is deferred to the
    // loading timeline's horizon and dispatch continues.
    EXPECT_TRUE(runtime->speculationActive());
    EXPECT_EQ(runtime->stats().pipelineBarriers, 0u);

    // A second pending flip while the window is open must extend it
    // (nested windows merge), still without a barrier.
    runtime->allocInPartition(0, "processing-scratch", 64);
    runtime->invokeAsync("cv2.imread", {imreadArg()});
    EXPECT_TRUE(runtime->speculationActive());
    EXPECT_EQ(runtime->stats().pipelineBarriers, 0u);

    // Draining retires the window: the commit horizon has passed.
    runtime->drainAll();
    EXPECT_FALSE(runtime->speculationActive());

    // The barrier-mode twin pays a full drain for each flip instead.
    RuntimeConfig barrier_config;
    barrier_config.pipelineParallel = true;
    auto barrier_rt = env().makeRuntime(barrier_config);
    barrier_rt->invokeAsync("cv2.imread", {imreadArg()});
    ipc::Value frame2 =
        callRef(*barrier_rt, "cv2.imread", {imreadArg()});
    barrier_rt->allocInPartition(0, "loading-scratch", 64);
    callRef(*barrier_rt, "cv2.GaussianBlur", {frame2});
    EXPECT_GT(barrier_rt->stats().pipelineBarriers, 0u);
    (void)blurred;
}

TEST(Speculation, SquashSurvivesAgentRestart)
{
    RuntimeConfig config;
    config.pipelineParallel = true;
    config.speculativeFlips = true;
    auto runtime = env().makeRuntime(config);
    ipc::Value frame = callRef(*runtime, "cv2.imread", {imreadArg()});
    ipc::Value chain =
        callRef(*runtime, "cv2.GaussianBlur", {frame});
    ASSERT_EQ(chain.kind(), ipc::Value::Kind::Ref);
    // Open the window, then lose the producing agent and restore it
    // from its checkpoint: the conflicting call that follows must
    // squash against the object's *current* (restored) home without
    // touching freed state, and replay the synchronous bytes.
    runtime->fetchToHost(chain.asRef());
    EXPECT_TRUE(runtime->speculationActive());
    uint32_t home_partition = 1; // processing, freePartDefault
    runtime->checkpointAgent(home_partition);
    ASSERT_TRUE(runtime->restartAgent(home_partition));
    ipc::Value drawn = callRef(
        *runtime, "cv2.rectangle",
        {chain, u64(2), u64(2), u64(8), u64(8), u64(255)});
    ASSERT_EQ(drawn.kind(), ipc::Value::Kind::Ref);
    runtime->fetchToHost(drawn.asRef());
    uint64_t spec_digest = util::fnv1a64(
        runtime->hostStore().serialize(drawn.asRef().objectId));
    runtime->drainAll();
    EXPECT_EQ(runtime->stats().agentRestarts, 1u);

    // Synchronous twin with the same restart point.
    auto sync_rt = env().makeRuntime();
    ipc::Value sframe =
        callRef(*sync_rt, "cv2.imread", {imreadArg()});
    ipc::Value schain =
        callRef(*sync_rt, "cv2.GaussianBlur", {sframe});
    ASSERT_EQ(schain.kind(), ipc::Value::Kind::Ref);
    sync_rt->fetchToHost(schain.asRef());
    sync_rt->checkpointAgent(home_partition);
    ASSERT_TRUE(sync_rt->restartAgent(home_partition));
    ipc::Value sdrawn = callRef(
        *sync_rt, "cv2.rectangle",
        {schain, u64(2), u64(2), u64(8), u64(8), u64(255)});
    ASSERT_EQ(sdrawn.kind(), ipc::Value::Kind::Ref);
    sync_rt->fetchToHost(sdrawn.asRef());
    uint64_t sync_digest = util::fnv1a64(
        sync_rt->hostStore().serialize(sdrawn.asRef().objectId));
    EXPECT_EQ(spec_digest, sync_digest);
}

TEST(Speculation, WindowRetiresOnceHorizonPasses)
{
    RuntimeConfig config;
    config.pipelineParallel = true;
    config.speculativeFlips = true;
    auto runtime = env().makeRuntime(config);
    ipc::Value frame = callRef(*runtime, "cv2.imread", {imreadArg()});
    ipc::Value chain =
        callRef(*runtime, "cv2.GaussianBlur", {frame});
    ASSERT_EQ(chain.kind(), ipc::Value::Kind::Ref);
    runtime->fetchToHost(chain.asRef());
    EXPECT_TRUE(runtime->speculationActive());
    // A full drain catches the global clock up with every timeline;
    // the pending flip has landed and speculation must retire.
    runtime->drainAll();
    EXPECT_FALSE(runtime->speculationActive());
    // Post-window calls run non-speculatively.
    uint64_t starts_before = runtime->stats().speculationStarts;
    ipc::Value drawn = callRef(
        *runtime, "cv2.rectangle",
        {chain, u64(2), u64(2), u64(8), u64(8), u64(255)});
    EXPECT_EQ(drawn.kind(), ipc::Value::Kind::Ref);
    EXPECT_EQ(runtime->stats().speculationStarts, starts_before);
    EXPECT_EQ(runtime->stats().speculationRollbacks, 0u);
}

} // namespace
} // namespace freepart::core
