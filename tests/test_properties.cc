/**
 * @file
 * Property-based parameterized sweeps:
 *  - every unary MiniCV kernel preserves shape, stays in u8 range,
 *    is deterministic, and never reads out of bounds, across a grid
 *    of image geometries (including 1-pixel and single-row edges);
 *  - the SPSC ring delivers FIFO content intact across a grid of
 *    capacities and message sizes;
 *  - the payload codec round-trips across payload kinds.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "fw/image_format.hh"
#include "fw/minicv_ops.hh"
#include "fw/vuln.hh"
#include "ipc/spsc_ring.hh"

namespace freepart {
namespace {

// ---- Unary kernel properties over image geometries -------------------

using Geometry = std::tuple<uint32_t, uint32_t, uint32_t>;

struct NamedKernel {
    const char *name;
    void (*fn)(const uint8_t *, uint8_t *, uint32_t, uint32_t,
               uint32_t);
};

void
blurAdapter(const uint8_t *s, uint8_t *d, uint32_t r, uint32_t c,
            uint32_t ch)
{
    fw::ops::boxBlur(s, d, r, c, ch, 3);
}

void
flipAdapter(const uint8_t *s, uint8_t *d, uint32_t r, uint32_t c,
            uint32_t ch)
{
    fw::ops::flipHorizontal(s, d, r, c, ch);
}

void
invertAdapter(const uint8_t *s, uint8_t *d, uint32_t r, uint32_t c,
              uint32_t ch)
{
    fw::ops::invert(s, d, static_cast<size_t>(r) * c * ch);
}

void
normalizeAdapter(const uint8_t *s, uint8_t *d, uint32_t r,
                 uint32_t c, uint32_t ch)
{
    fw::ops::normalizeMinMax(s, d, static_cast<size_t>(r) * c * ch);
}

const NamedKernel kKernels[] = {
    {"gaussian", &fw::ops::gaussianBlur3x3},
    {"box", &blurAdapter},
    {"erode", &fw::ops::erode3x3},
    {"dilate", &fw::ops::dilate3x3},
    {"morphOpen", &fw::ops::morphOpen},
    {"morphClose", &fw::ops::morphClose},
    {"flip", &flipAdapter},
    {"invert", &invertAdapter},
    {"normalize", &normalizeAdapter},
};

class KernelGeometry
    : public ::testing::TestWithParam<std::tuple<int, Geometry>>
{
  protected:
    /** Deterministic input with guard bands before and after. */
    std::vector<uint8_t>
    makeInput(uint32_t rows, uint32_t cols, uint32_t ch) const
    {
        std::vector<uint8_t> buf(static_cast<size_t>(rows) * cols *
                                 ch);
        for (size_t i = 0; i < buf.size(); ++i)
            buf[i] = static_cast<uint8_t>((i * 31 + 7) & 0xff);
        return buf;
    }
};

TEST_P(KernelGeometry, DeterministicAndShapePreserving)
{
    const NamedKernel &kernel = kKernels[std::get<0>(GetParam())];
    auto [rows, cols, ch] = std::get<1>(GetParam());
    std::vector<uint8_t> src = makeInput(rows, cols, ch);

    // Guarded destination: sentinel bytes around the image detect
    // out-of-bounds writes.
    constexpr size_t kGuard = 64;
    size_t len = src.size();
    std::vector<uint8_t> guarded(len + 2 * kGuard, 0xee);
    kernel.fn(src.data(), guarded.data() + kGuard, rows, cols, ch);
    for (size_t i = 0; i < kGuard; ++i) {
        ASSERT_EQ(guarded[i], 0xee) << kernel.name << " wrote "
                                    << "before the image";
        ASSERT_EQ(guarded[kGuard + len + i], 0xee)
            << kernel.name << " wrote past the image";
    }

    // Deterministic: a second run produces identical bytes.
    std::vector<uint8_t> again(len);
    kernel.fn(src.data(), again.data(), rows, cols, ch);
    EXPECT_TRUE(std::equal(again.begin(), again.end(),
                           guarded.begin() + kGuard))
        << kernel.name;

    // Pure: the input was not modified.
    EXPECT_EQ(src, makeInput(rows, cols, ch)) << kernel.name;
}

std::vector<std::tuple<int, Geometry>>
kernelGeometryGrid()
{
    const Geometry geometries[] = {
        {1, 1, 1},  {1, 16, 1}, {16, 1, 1},  {5, 7, 1},
        {8, 8, 3},  {17, 13, 2}, {32, 32, 3},
    };
    std::vector<std::tuple<int, Geometry>> out;
    for (int k = 0; k < static_cast<int>(std::size(kKernels)); ++k)
        for (const Geometry &g : geometries)
            out.emplace_back(k, g);
    return out;
}

std::string
kernelGeometryName(
    const ::testing::TestParamInfo<std::tuple<int, Geometry>> &info)
{
    auto [rows, cols, ch] = std::get<1>(info.param);
    return std::string(kKernels[std::get<0>(info.param)].name) +
           "_" + std::to_string(rows) + "x" + std::to_string(cols) +
           "x" + std::to_string(ch);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelGeometry,
                         ::testing::ValuesIn(kernelGeometryGrid()),
                         kernelGeometryName);

// ---- Monotone-kernel range property -----------------------------------

class RangePreserving
    : public ::testing::TestWithParam<std::tuple<int, Geometry>>
{
};

TEST_P(RangePreserving, OutputWithinInputRange)
{
    // Smoothing/morphology kernels never invent values outside the
    // input's [min, max] interval.
    const NamedKernel &kernel = kKernels[std::get<0>(GetParam())];
    auto [rows, cols, ch] = std::get<1>(GetParam());
    std::vector<uint8_t> src(static_cast<size_t>(rows) * cols * ch);
    for (size_t i = 0; i < src.size(); ++i)
        src[i] = static_cast<uint8_t>(40 + (i * 13) % 120);
    std::vector<uint8_t> dst(src.size());
    kernel.fn(src.data(), dst.data(), rows, cols, ch);
    for (uint8_t v : dst) {
        EXPECT_GE(v, 40) << kernel.name;
        EXPECT_LT(v, 160) << kernel.name;
    }
}

std::vector<std::tuple<int, Geometry>>
rangeGrid()
{
    // Kernels 0..5 are the smoothing/morphology family.
    std::vector<std::tuple<int, Geometry>> out;
    for (int k = 0; k <= 5; ++k) {
        out.emplace_back(k, Geometry{9, 9, 1});
        out.emplace_back(k, Geometry{12, 5, 3});
    }
    return out;
}

INSTANTIATE_TEST_SUITE_P(Smoothers, RangePreserving,
                         ::testing::ValuesIn(rangeGrid()),
                         kernelGeometryName);

// ---- SPSC ring FIFO property over capacities and sizes ------------------

class RingSweep
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>>
{
};

TEST_P(RingSweep, FifoContentIntegrity)
{
    auto [capacity, msg_len] = GetParam();
    std::vector<uint8_t> region(ipc::SpscRing::kHeaderBytes +
                                capacity);
    ipc::SpscRing ring =
        ipc::SpscRing::create(region.data(), region.size());

    // Interleaved push/pop with varying backlog; every popped
    // message must match its pushed content in order.
    uint32_t pushed = 0, popped = 0;
    std::vector<uint8_t> out;
    auto make_msg = [&](uint32_t n) {
        std::vector<uint8_t> msg(msg_len);
        for (size_t i = 0; i < msg.size(); ++i)
            msg[i] = static_cast<uint8_t>(n * 7 + i);
        return msg;
    };
    for (int step = 0; step < 500; ++step) {
        if (step % 3 != 2) {
            std::vector<uint8_t> msg = make_msg(pushed);
            if (ring.tryPush(msg.data(), msg.size()))
                ++pushed;
        } else if (ring.tryPop(out)) {
            ASSERT_EQ(out, make_msg(popped));
            ++popped;
        }
    }
    while (ring.tryPop(out)) {
        ASSERT_EQ(out, make_msg(popped));
        ++popped;
    }
    EXPECT_EQ(pushed, popped);
    EXPECT_GT(pushed, 0u);
    EXPECT_TRUE(ring.empty());
}

INSTANTIATE_TEST_SUITE_P(
    CapacityBySize, RingSweep,
    ::testing::Combine(::testing::Values(size_t{64}, size_t{256},
                                         size_t{4096}),
                       ::testing::Values(size_t{1}, size_t{13},
                                         size_t{32})),
    [](const ::testing::TestParamInfo<std::tuple<size_t, size_t>>
           &info) {
        return "cap" + std::to_string(std::get<0>(info.param)) +
               "_msg" + std::to_string(std::get<1>(info.param));
    });

// ---- Payload codec round trip over kinds -------------------------------

class PayloadKinds
    : public ::testing::TestWithParam<fw::PayloadKind>
{
};

TEST_P(PayloadKinds, RoundTripsThroughImageTrailer)
{
    fw::ExploitPayload payload;
    payload.kind = GetParam();
    payload.cve = "CVE-TEST-0001";
    payload.targetAddr = 0x123456;
    payload.writeData = {9, 8, 7};
    payload.leakAddr = 0x654321;
    payload.leakLen = 99;
    payload.dest = "c2.example";
    payload.forkCount = 5;

    std::vector<uint8_t> file = fw::encodeImageFile(
        4, 4, 1, fw::synthPixels(4, 4, 1, 0), payload);
    fw::DecodedImage img = fw::decodeImageFile(file);
    auto back = fw::decodePayload(img.trailer);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->kind, payload.kind);
    EXPECT_EQ(back->cve, payload.cve);
    EXPECT_EQ(back->targetAddr, payload.targetAddr);
    EXPECT_EQ(back->writeData, payload.writeData);
    EXPECT_EQ(back->leakAddr, payload.leakAddr);
    EXPECT_EQ(back->leakLen, payload.leakLen);
    EXPECT_EQ(back->dest, payload.dest);
    EXPECT_EQ(back->forkCount, payload.forkCount);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, PayloadKinds,
    ::testing::Values(fw::PayloadKind::OobWrite,
                      fw::PayloadKind::Exfiltrate,
                      fw::PayloadKind::Dos,
                      fw::PayloadKind::CodeRewrite,
                      fw::PayloadKind::ForkBomb),
    [](const ::testing::TestParamInfo<fw::PayloadKind> &info) {
        std::string name = fw::payloadKindName(info.param);
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

} // namespace
} // namespace freepart
