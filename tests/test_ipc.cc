/**
 * @file
 * Unit tests for the IPC layer: the SPSC ring (including wrap-around
 * and a real two-thread stress run), the value codec, and the
 * host<->agent channel over simulated shared memory.
 */

#include <gtest/gtest.h>

#include <thread>

#include "ipc/channel.hh"
#include "ipc/codec.hh"
#include "ipc/spsc_ring.hh"

namespace freepart::ipc {
namespace {

TEST(SpscRing, PushPopRoundTrip)
{
    std::vector<uint8_t> region(4096);
    SpscRing ring = SpscRing::create(region.data(), region.size());
    std::vector<uint8_t> msg = {1, 2, 3, 4, 5};
    EXPECT_TRUE(ring.tryPush(msg.data(), msg.size()));
    EXPECT_EQ(ring.peekLength(), 5u);
    std::vector<uint8_t> out;
    EXPECT_TRUE(ring.tryPop(out));
    EXPECT_EQ(out, msg);
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, PopOnEmptyFails)
{
    std::vector<uint8_t> region(4096);
    SpscRing ring = SpscRing::create(region.data(), region.size());
    std::vector<uint8_t> out;
    EXPECT_FALSE(ring.tryPop(out));
    EXPECT_EQ(ring.peekLength(), 0u);
}

TEST(SpscRing, RejectsOversizedMessage)
{
    std::vector<uint8_t> region(256);
    SpscRing ring = SpscRing::create(region.data(), region.size());
    std::vector<uint8_t> big(1000);
    EXPECT_FALSE(ring.tryPush(big.data(), big.size()));
}

TEST(SpscRing, FillsAndDrains)
{
    std::vector<uint8_t> region(SpscRing::kHeaderBytes + 256);
    SpscRing ring = SpscRing::create(region.data(), region.size());
    std::vector<uint8_t> msg(20, 0xab);
    int pushed = 0;
    while (ring.tryPush(msg.data(), msg.size()))
        ++pushed;
    EXPECT_GT(pushed, 3);
    std::vector<uint8_t> out;
    int popped = 0;
    while (ring.tryPop(out)) {
        EXPECT_EQ(out, msg);
        ++popped;
    }
    EXPECT_EQ(popped, pushed);
}

TEST(SpscRing, WrapsAroundBoundary)
{
    std::vector<uint8_t> region(SpscRing::kHeaderBytes + 64);
    SpscRing ring = SpscRing::create(region.data(), region.size());
    // Repeatedly push/pop so head/tail cross the 64-byte boundary
    // many times; contents must survive the wrap.
    for (int i = 0; i < 100; ++i) {
        std::vector<uint8_t> msg(24);
        for (size_t j = 0; j < msg.size(); ++j)
            msg[j] = static_cast<uint8_t>(i + j);
        ASSERT_TRUE(ring.tryPush(msg.data(), msg.size()));
        std::vector<uint8_t> out;
        ASSERT_TRUE(ring.tryPop(out));
        ASSERT_EQ(out, msg);
    }
}

TEST(SpscRing, AttachSeesExistingData)
{
    std::vector<uint8_t> region(4096);
    SpscRing producer = SpscRing::create(region.data(), region.size());
    std::vector<uint8_t> msg = {9, 8, 7};
    producer.tryPush(msg.data(), msg.size());
    SpscRing consumer = SpscRing::attach(region.data(), region.size());
    std::vector<uint8_t> out;
    EXPECT_TRUE(consumer.tryPop(out));
    EXPECT_EQ(out, msg);
}

TEST(SpscRing, TwoThreadStress)
{
    std::vector<uint8_t> region(SpscRing::kHeaderBytes + 1024);
    SpscRing producer = SpscRing::create(region.data(), region.size());
    SpscRing consumer = SpscRing::attach(region.data(), region.size());
    constexpr int kCount = 20000;

    std::thread consumer_thread([&] {
        std::vector<uint8_t> out;
        for (int expected = 0; expected < kCount;) {
            if (!consumer.tryPop(out))
                continue;
            ASSERT_EQ(out.size(), sizeof(int));
            int value;
            std::memcpy(&value, out.data(), sizeof(int));
            ASSERT_EQ(value, expected);
            ++expected;
        }
    });

    for (int i = 0; i < kCount;) {
        if (producer.tryPush(reinterpret_cast<uint8_t *>(&i),
                             sizeof(int)))
            ++i;
    }
    consumer_thread.join();
}

TEST(Codec, ScalarRoundTrip)
{
    Message msg;
    msg.kind = MsgKind::Request;
    msg.seq = 0x123456789abcull;
    msg.apiId = 42;
    msg.values.emplace_back(uint64_t{7});
    msg.values.emplace_back(int64_t{-9});
    msg.values.emplace_back(3.25);
    msg.values.emplace_back(std::string("hello"));
    Message back = decodeMessage(encodeMessage(msg));
    EXPECT_EQ(back.kind, MsgKind::Request);
    EXPECT_EQ(back.seq, msg.seq);
    EXPECT_EQ(back.apiId, 42u);
    ASSERT_EQ(back.values.size(), 4u);
    EXPECT_EQ(back.values[0].asU64(), 7u);
    EXPECT_EQ(back.values[1].asI64(), -9);
    EXPECT_DOUBLE_EQ(back.values[2].asF64(), 3.25);
    EXPECT_EQ(back.values[3].asStr(), "hello");
}

TEST(Codec, BlobAndRefRoundTrip)
{
    Message msg;
    msg.values.emplace_back(std::vector<uint8_t>{1, 2, 3, 255});
    msg.values.emplace_back(ObjectRef{3, 0xdeadbeefull});
    msg.values.emplace_back(); // None
    Message back = decodeMessage(encodeMessage(msg));
    ASSERT_EQ(back.values.size(), 3u);
    EXPECT_EQ(back.values[0].asBlob(),
              (std::vector<uint8_t>{1, 2, 3, 255}));
    EXPECT_EQ(back.values[1].asRef(), (ObjectRef{3, 0xdeadbeefull}));
    EXPECT_TRUE(back.values[2].isNone());
}

TEST(Codec, EmptyMessage)
{
    Message msg;
    Message back = decodeMessage(encodeMessage(msg));
    EXPECT_TRUE(back.values.empty());
}

TEST(Codec, TruncatedInputThrows)
{
    Message msg;
    msg.values.emplace_back(std::string("payload"));
    std::vector<uint8_t> wire = encodeMessage(msg);
    wire.resize(wire.size() - 3);
    EXPECT_ANY_THROW(decodeMessage(wire));
}

TEST(Codec, WrongKindAccessPanics)
{
    Value v(uint64_t{1});
    EXPECT_ANY_THROW(v.asStr());
    EXPECT_ANY_THROW(v.asBlob());
    EXPECT_ANY_THROW(v.asRef());
    EXPECT_ANY_THROW(v.asF64());
}

TEST(Codec, WireSizeMatchesApproximateEncoding)
{
    Value blob(std::vector<uint8_t>(100));
    EXPECT_EQ(blob.wireSize(), 1 + 4 + 100u);
    Value str(std::string("abcd"));
    EXPECT_EQ(str.wireSize(), 1 + 4 + 4u);
    Value ref(ObjectRef{1, 2});
    EXPECT_EQ(ref.wireSize(), 13u);
}

TEST(Channel, RequestResponseRoundTrip)
{
    osim::Kernel kernel;
    osim::Process &host = kernel.spawn("host");
    osim::Process &agent = kernel.spawn("agent");
    Channel channel(kernel, "ch:test", host.pid(), agent.pid());

    Message request;
    request.kind = MsgKind::Request;
    request.seq = 1;
    request.apiId = 5;
    request.values.emplace_back(std::string("arg"));
    channel.sendRequest(request);

    Message received;
    ASSERT_TRUE(channel.receiveRequest(received));
    EXPECT_EQ(received.apiId, 5u);
    EXPECT_EQ(received.values[0].asStr(), "arg");

    Message response;
    response.kind = MsgKind::Response;
    response.seq = 1;
    response.values.emplace_back(uint64_t{99});
    channel.sendResponse(response);

    Message got;
    ASSERT_TRUE(channel.receiveResponse(got));
    EXPECT_EQ(got.values[0].asU64(), 99u);

    EXPECT_EQ(channel.stats().requests, 1u);
    EXPECT_EQ(channel.stats().responses, 1u);
    EXPECT_GT(channel.stats().bytesSent, 0u);
}

TEST(Channel, ChargesSimulatedTime)
{
    osim::Kernel kernel;
    osim::Process &host = kernel.spawn("host");
    osim::Process &agent = kernel.spawn("agent");
    Channel channel(kernel, "ch:t", host.pid(), agent.pid());
    osim::SimTime before = kernel.now();
    Message msg;
    channel.sendRequest(msg);
    EXPECT_GT(kernel.now(), before);
}

TEST(Channel, ReceiveOnEmptyChannelFails)
{
    osim::Kernel kernel;
    osim::Process &host = kernel.spawn("host");
    osim::Process &agent = kernel.spawn("agent");
    Channel channel(kernel, "ch:e", host.pid(), agent.pid());
    Message msg;
    EXPECT_FALSE(channel.receiveRequest(msg));
    EXPECT_FALSE(channel.receiveResponse(msg));
}

} // namespace
} // namespace freepart::ipc
