/**
 * @file
 * Workload-generator tests: generated traces follow the pipeline
 * pattern and the model's API mix; replays succeed under both
 * partitioned and unpartitioned runtimes; LDC dominates the copy
 * operations (the Table 12 property).
 */

#include <gtest/gtest.h>

#include "apps/workload.hh"

namespace freepart::apps {
namespace {

struct WlEnv {
    WlEnv() : registry(fw::buildFullRegistry())
    {
        analysis::HybridCategorizer categorizer(registry);
        cats = categorizer.categorizeAll();
    }

    fw::ApiRegistry registry;
    analysis::Categorization cats;
};

WlEnv &
env()
{
    static WlEnv instance;
    return instance;
}

WorkloadGenerator::Config
smallConfig()
{
    WorkloadGenerator::Config config;
    config.imageRows = 96;
    config.imageCols = 96;
    config.maxRounds = 2;
    config.maxCallsPerRound = 10;
    return config;
}

TEST(Workload, TraceStartsEveryRoundWithLoading)
{
    WorkloadGenerator generator(env().registry, smallConfig());
    for (const AppModel &model : appModels()) {
        auto calls = generator.trace(model);
        ASSERT_FALSE(calls.empty()) << model.name;
        EXPECT_TRUE(calls.front().startsRound);
        for (const WorkloadCall &call : calls) {
            const fw::ApiDescriptor &api =
                env().registry.require(call.api);
            if (call.startsRound) {
                EXPECT_EQ(api.declaredType, fw::ApiType::Loading)
                    << call.api;
            }
        }
    }
}

TEST(Workload, TraceRespectsModelTypeMix)
{
    WorkloadGenerator generator(env().registry, smallConfig());
    const AppModel &headless = appModel(14); // FAIRSEQ: no GUI
    for (const WorkloadCall &call : generator.trace(headless))
        EXPECT_NE(env().registry.require(call.api).declaredType,
                  fw::ApiType::Visualizing)
            << call.api;
    const AppModel &omr = appModel(8);
    bool has_vis = false;
    for (const WorkloadCall &call : generator.trace(omr))
        has_vis |= env().registry.require(call.api).declaredType ==
                   fw::ApiType::Visualizing;
    EXPECT_TRUE(has_vis);
}

TEST(Workload, ApisForMatchesFrameworkPreference)
{
    WorkloadGenerator generator(env().registry, smallConfig());
    const AppModel &torch_app = appModel(16); // YOLO-V3, PyTorch
    auto apis = generator.apisFor(torch_app);
    int torch_count = 0;
    for (const std::string &api : apis)
        if (env().registry.require(api).framework ==
            fw::Framework::PyTorch)
            ++torch_count;
    EXPECT_GT(torch_count, 3);
}

/** Parameterized replay over all 23 app models. */
class WorkloadReplay : public ::testing::TestWithParam<int>
{
};

TEST_P(WorkloadReplay, RunsCleanlyUnderFreePart)
{
    const AppModel &model = appModel(GetParam());
    WorkloadGenerator generator(env().registry, smallConfig());
    osim::Kernel kernel;
    generator.seedInputs(kernel);
    core::FreePartRuntime runtime(
        kernel, env().registry, env().cats,
        core::PartitionPlan::freePartDefault());
    WorkloadResult result = generator.run(runtime, model);
    EXPECT_EQ(result.callsFailed, 0u) << model.name;
    EXPECT_GT(result.callsOk, 0u);
    EXPECT_GT(result.stats.ipcMessages, 0u);
    EXPECT_TRUE(runtime.hostAlive());
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, WorkloadReplay,
    ::testing::Range(1, 24),
    [](const ::testing::TestParamInfo<int> &info) {
        return "app_" + std::to_string(info.param);
    });

TEST(Workload, LdcDominatesCopyOperations)
{
    // Table 12: ~95% of copy operations are lazy.
    WorkloadGenerator generator(env().registry, smallConfig());
    double total_lazy = 0, total_ops = 0;
    for (int id : {1, 8, 16, 21}) {
        osim::Kernel kernel;
        generator.seedInputs(kernel);
        core::FreePartRuntime runtime(
            kernel, env().registry, env().cats,
            core::PartitionPlan::freePartDefault());
        WorkloadResult result =
            generator.run(runtime, appModel(id));
        total_lazy += static_cast<double>(
            result.stats.lazyCopies + result.stats.directCopies);
        total_ops += static_cast<double>(result.stats.copyOps());
    }
    ASSERT_GT(total_ops, 0);
    EXPECT_GT(total_lazy / total_ops, 0.85);
}

TEST(Workload, FreePartOverheadIsSmall)
{
    // The Fig. 13 property at test scale: partitioned execution costs
    // only a few percent over native.
    WorkloadGenerator::Config config;
    config.imageRows = 256;
    config.imageCols = 256;
    config.maxRounds = 2;
    config.maxCallsPerRound = 16;
    WorkloadGenerator generator(env().registry, config);
    const AppModel &model = appModel(8);

    auto elapsed = [&](core::PartitionPlan plan) {
        osim::Kernel kernel;
        generator.seedInputs(kernel);
        core::FreePartRuntime runtime(kernel, env().registry,
                                      env().cats, std::move(plan));
        return static_cast<double>(
            generator.run(runtime, model).stats.elapsed());
    };
    double base = elapsed(core::PartitionPlan::inHost());
    double freepart = elapsed(core::PartitionPlan::freePartDefault());
    EXPECT_GT(freepart, base);
    EXPECT_LT((freepart - base) / base, 0.5);
}

} // namespace
} // namespace freepart::apps
