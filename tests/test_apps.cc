/**
 * @file
 * Tests for the concrete applications: the OMR grader runs its full
 * pipeline under partitioned and unpartitioned runtimes with
 * identical results; the drone and viewer apps behave; the app-model
 * dataset matches Table 6's aggregates.
 */

#include <gtest/gtest.h>

#include "apps/app_models.hh"
#include "apps/drone.hh"
#include "apps/image_viewer.hh"
#include "apps/omr_checker.hh"

namespace freepart::apps {
namespace {

struct AppEnv {
    AppEnv() : registry(fw::buildFullRegistry())
    {
        analysis::HybridCategorizer categorizer(registry);
        cats = categorizer.categorizeAll();
    }

    std::unique_ptr<core::FreePartRuntime>
    makeRuntime(core::PartitionPlan plan,
                core::RuntimeConfig config = {})
    {
        kernel = std::make_unique<osim::Kernel>();
        return std::make_unique<core::FreePartRuntime>(
            *kernel, registry, cats, std::move(plan), config);
    }

    fw::ApiRegistry registry;
    analysis::Categorization cats;
    std::unique_ptr<osim::Kernel> kernel;
};

AppEnv &
env()
{
    static AppEnv instance;
    return instance;
}

OmrChecker::Config
smallOmr()
{
    OmrChecker::Config config;
    config.imageRows = 64;
    config.imageCols = 64;
    config.questions = 4;
    return config;
}

TEST(OmrChecker, GradesSubmissionsEndToEnd)
{
    auto runtime =
        env().makeRuntime(core::PartitionPlan::freePartDefault());
    auto inputs =
        OmrChecker::seedInputs(*env().kernel, 2, smallOmr());
    OmrChecker app(*runtime, smallOmr());
    app.setup();
    for (const std::string &input : inputs) {
        GradeResult result = app.gradeSubmission(input);
        EXPECT_TRUE(result.ok) << input;
        EXPECT_EQ(result.answers.size(), 4u);
    }
    app.finish();
    // Results CSV written via the storing pipeline.
    ASSERT_TRUE(env().kernel->vfs().exists("/out/results.csv"));
    const auto &csv = env().kernel->vfs().getFile("/out/results.csv");
    std::string text(csv.begin(), csv.end());
    EXPECT_NE(text.find("image,score"), std::string::npos);
    EXPECT_NE(text.find("/data/omr_0.fpim"), std::string::npos);
    // Annotated sheets displayed and stored.
    EXPECT_GE(env().kernel->display().events().size(), 2u);
    EXPECT_TRUE(env().kernel->vfs().exists("/out/graded_0.fpim"));
}

TEST(OmrChecker, ScoresIdenticalWithAndWithoutIsolation)
{
    auto grade_with = [&](core::PartitionPlan plan) {
        auto runtime = env().makeRuntime(std::move(plan));
        auto inputs =
            OmrChecker::seedInputs(*env().kernel, 2, smallOmr());
        OmrChecker app(*runtime, smallOmr());
        app.setup();
        std::vector<int> scores;
        for (const std::string &input : inputs)
            scores.push_back(app.gradeSubmission(input).score);
        return scores;
    };
    EXPECT_EQ(grade_with(core::PartitionPlan::freePartDefault()),
              grade_with(core::PartitionPlan::inHost()));
}

TEST(OmrChecker, TemplateProtectedAfterInitialization)
{
    auto runtime =
        env().makeRuntime(core::PartitionPlan::freePartDefault());
    auto inputs =
        OmrChecker::seedInputs(*env().kernel, 1, smallOmr());
    OmrChecker app(*runtime, smallOmr());
    app.setup();
    // Template writable during initialization...
    osim::AddressSpace &host = runtime->hostProcess().space();
    EXPECT_NO_THROW(
        host.writeValue<uint8_t>(app.templateAddr(), 1));
    app.gradeSubmission(inputs[0]);
    // ...read-only once the pipeline has moved past loading.
    EXPECT_THROW(host.writeValue<uint8_t>(app.templateAddr(), 2),
                 osim::MemFault);
}

TEST(OmrChecker, UsesApisOfAllFourTypes)
{
    auto runtime =
        env().makeRuntime(core::PartitionPlan::freePartDefault());
    auto inputs =
        OmrChecker::seedInputs(*env().kernel, 1, smallOmr());
    OmrChecker app(*runtime, smallOmr());
    app.setup();
    app.gradeSubmission(inputs[0]);
    app.finish();
    std::map<fw::ApiType, int> type_counts;
    for (const std::string &api : app.usedApis())
        ++type_counts[env().registry.require(api).declaredType];
    EXPECT_GE(type_counts[fw::ApiType::Loading], 1);
    EXPECT_GE(type_counts[fw::ApiType::Processing], 8);
    EXPECT_GE(type_counts[fw::ApiType::Visualizing], 1);
    EXPECT_GE(type_counts[fw::ApiType::Storing], 2);
    // The hot-loop pair dominates total call counts (Fig. 4 setup).
    int rect_calls = 0;
    for (const std::string &api : app.callSequence())
        if (api == "cv2.rectangle" || api == "cv2.putText")
            ++rect_calls;
    EXPECT_GE(rect_calls, 8);
}

TEST(DroneTracker, ProcessesFramesAndMoves)
{
    auto runtime =
        env().makeRuntime(core::PartitionPlan::freePartDefault());
    auto frames = DroneTracker::seedFrames(*env().kernel, 3);
    DroneTracker drone(*runtime);
    drone.setup();
    EXPECT_DOUBLE_EQ(drone.speed(), 0.3);
    for (const std::string &frame : frames)
        EXPECT_TRUE(drone.processFrame(frame));
    EXPECT_EQ(drone.framesProcessed(), 3);
    EXPECT_EQ(drone.framesDropped(), 0);
    EXPECT_TRUE(drone.operable());
    EXPECT_NE(drone.positionX(), 0.0);
}

TEST(DroneTracker, SurvivesCrashedFrameAndContinues)
{
    auto runtime =
        env().makeRuntime(core::PartitionPlan::freePartDefault());
    auto frames = DroneTracker::seedFrames(*env().kernel, 2);
    // A malicious frame that DoS-crashes the loader.
    fw::ExploitPayload payload;
    payload.kind = fw::PayloadKind::Dos;
    payload.cve = "CVE-2017-14136";
    env().kernel->vfs().putFile(
        "/spool/evil.fpim",
        fw::encodeImageFile(8, 8, 1, fw::synthPixels(8, 8, 1, 0),
                            payload));
    DroneTracker drone(*runtime);
    drone.setup();
    EXPECT_TRUE(drone.processFrame(frames[0]));
    EXPECT_FALSE(drone.processFrame("/spool/evil.fpim"));
    EXPECT_TRUE(drone.operable()); // the drone is still flying
    EXPECT_TRUE(drone.processFrame(frames[1])); // restarted agent
    EXPECT_EQ(drone.framesDropped(), 1);
}

TEST(ImageViewer, OpensImagesAndTracksRecents)
{
    auto runtime =
        env().makeRuntime(core::PartitionPlan::freePartDefault());
    auto images = ImageViewer::seedImages(*env().kernel, 2);
    ImageViewer viewer(*runtime);
    viewer.setup();
    for (const std::string &image : images)
        EXPECT_TRUE(viewer.openImage(image));
    EXPECT_EQ(viewer.imagesShown(), 2);
    EXPECT_NE(viewer.recentNames().find("secret_album_0"),
              std::string::npos);
    // The GTK recent manager in the visualizing process knows the
    // window, and the display recorded the shows.
    EXPECT_GE(env().kernel->display().events().size(), 2u);
}

TEST(AppModels, TwentyThreeAppsMatchingTable6)
{
    const auto &models = appModels();
    ASSERT_EQ(models.size(), 23u);
    // Spot-check transcribed rows.
    const AppModel &omr = appModel(8);
    EXPECT_EQ(omr.name, "OMRChecker");
    EXPECT_EQ(omr.sloc, 1797u);
    EXPECT_EQ(omr.processing.unique, 42u);
    EXPECT_EQ(omr.processing.total, 88u);
    const AppModel &gan = appModel(15);
    EXPECT_EQ(gan.name, "PyTorch-GAN");
    EXPECT_EQ(gan.processing.total, 1747u);
    const AppModel &openpose = appModel(10);
    EXPECT_EQ(openpose.sloc, 459373u);
    EXPECT_EQ(openpose.framework, fw::Framework::Caffe);
}

TEST(AppModels, FrameworkDistributionMatchesPaper)
{
    // 9 OpenCV(-based), 3 Caffe, 10 PyTorch(includes SiamMask..19),
    // 4 TensorFlow — but per Table 6 ids: 1-8 OpenCV, 9-11 Caffe,
    // 12-19 PyTorch, 20-23 TensorFlow.
    std::map<fw::Framework, int> counts;
    for (const AppModel &model : appModels())
        ++counts[model.framework];
    EXPECT_EQ(counts[fw::Framework::OpenCV], 8);
    EXPECT_EQ(counts[fw::Framework::Caffe], 3);
    EXPECT_EQ(counts[fw::Framework::PyTorch], 8);
    EXPECT_EQ(counts[fw::Framework::TensorFlow], 4);
}

TEST(AppModels, LoadingIsSmallestProcessingIsLargest)
{
    // §5.1: loading has the fewest unique APIs; processing the most.
    uint64_t loading = 0, processing = 0, vis = 0, storing = 0;
    for (const AppModel &model : appModels()) {
        loading += model.loading.unique;
        processing += model.processing.unique;
        vis += model.visualizing.unique;
        storing += model.storing.unique;
    }
    EXPECT_GT(processing, loading);
    EXPECT_GT(processing, vis);
    EXPECT_GT(processing, storing);
}

TEST(AppModels, UnknownIdThrows)
{
    EXPECT_ANY_THROW(appModel(99));
}

} // namespace
} // namespace freepart::apps
