/**
 * @file
 * Baseline-technique tests: the Table 1 qualitative ordering must
 * reproduce — FreePart prevents all three attack classes with low
 * overhead, while each existing technique fails where the paper says
 * it fails (code-based API fails M, whole-library fails M/C,
 * memory-based fails D, per-API is slow).
 */

#include <gtest/gtest.h>

#include "baselines/evaluator.hh"

namespace freepart::baselines {
namespace {

TechniqueEvaluator &
evaluator()
{
    static TechniqueEvaluator instance([] {
        TechniqueEvaluator::Config config;
        config.submissions = 1;
        config.imageRows = 96;
        config.imageCols = 96;
        config.questions = 4;
        return config;
    }());
    return instance;
}

TEST(Techniques, Names)
{
    EXPECT_STREQ(techniqueName(Technique::FreePart), "FreePart");
    EXPECT_STREQ(techniqueName(Technique::MemoryBased),
                 "Memory-based");
}

TEST(Techniques, SetupShapes)
{
    std::vector<std::string> apis = {"cv2.imread", "cv2.imshow",
                                     "cv2.erode", "cv2.imwrite"};
    EXPECT_EQ(makeTechniqueSetup(Technique::CodeApi, apis)
                  .plan.partitionCount(),
              3u);
    EXPECT_EQ(makeTechniqueSetup(Technique::CodeApiData, apis)
                  .plan.partitionCount(),
              5u);
    EXPECT_EQ(makeTechniqueSetup(Technique::LibEntire, apis)
                  .plan.partitionCount(),
              1u);
    EXPECT_EQ(makeTechniqueSetup(Technique::LibPerApi, apis)
                  .plan.partitionCount(),
              4u);
    EXPECT_EQ(makeTechniqueSetup(Technique::MemoryBased, apis)
                  .plan.partitionCount(),
              0u);
    EXPECT_EQ(makeTechniqueSetup(Technique::FreePart, apis)
                  .plan.partitionCount(),
              4u);
}

TEST(Techniques, FreePartPreventsAllAttackClasses)
{
    TechniqueReport report =
        evaluator().evaluate(Technique::FreePart);
    EXPECT_TRUE(report.preventsMemCorruption);
    EXPECT_TRUE(report.preventsCodeManip);
    EXPECT_TRUE(report.preventsDos);
    EXPECT_EQ(report.isolatedCveApis, 2u);
    EXPECT_EQ(report.processCount, 5u);
    EXPECT_STREQ(report.checks.dataLevel(), "Highly");
}

TEST(Techniques, NoIsolationPreventsNothing)
{
    TechniqueReport report =
        evaluator().evaluate(Technique::NoIsolation);
    EXPECT_FALSE(report.preventsMemCorruption);
    EXPECT_FALSE(report.preventsCodeManip);
    EXPECT_FALSE(report.preventsDos);
    EXPECT_EQ(report.processCount, 1u);
}

TEST(Techniques, CodeApiFailsTemplateCorruption)
{
    // Fig. 2-(a): the process running imread also holds template.
    TechniqueReport report =
        evaluator().evaluate(Technique::CodeApi);
    EXPECT_FALSE(report.checks.templateCorruptionMitigated);
    EXPECT_TRUE(report.checks.omrCropCorruptionMitigated);
    EXPECT_FALSE(report.preventsMemCorruption);
    EXPECT_TRUE(report.preventsDos); // crashes stay in a partition
}

TEST(Techniques, CodeApiDataProtectsDataButIsSlow)
{
    TechniqueReport report =
        evaluator().evaluate(Technique::CodeApiData);
    EXPECT_TRUE(report.preventsMemCorruption);
    EXPECT_EQ(report.isolatedCveApis, 2u);
    EXPECT_EQ(report.processCount, 5u);
    // The per-input data-access IPC cost shows up (Table 9's 6,854
    // vs 169 IPCs; scaled to this build's call counts).
    TechniqueReport code_api =
        evaluator().evaluate(Technique::CodeApi);
    EXPECT_GT(report.ipcCount, code_api.ipcCount * 2);
    EXPECT_GT(report.simTime, code_api.simTime);
}

TEST(Techniques, LibEntireSharesDataAndGroupsVulnApis)
{
    TechniqueReport report =
        evaluator().evaluate(Technique::LibEntire);
    EXPECT_FALSE(report.checks.templateNotShared);
    EXPECT_EQ(report.isolatedCveApis, 0u); // imread+imshow together
    EXPECT_FALSE(report.preventsCodeManip);
    EXPECT_TRUE(report.preventsDos);
    EXPECT_EQ(report.processCount, 2u);
}

TEST(Techniques, LibPerApiSecureButSlowest)
{
    TechniqueReport per_api =
        evaluator().evaluate(Technique::LibPerApi);
    EXPECT_TRUE(per_api.preventsMemCorruption);
    EXPECT_TRUE(per_api.preventsDos);
    EXPECT_EQ(per_api.isolatedCveApis, 2u);
    EXPECT_TRUE(per_api.checks.individualProcesses);
    EXPECT_EQ(per_api.maxApisPerProc, 1u);
    TechniqueReport freepart =
        evaluator().evaluate(Technique::FreePart);
    // Full-copy-per-call makes it move far more data than FreePart.
    EXPECT_GT(per_api.bytesTransferred,
              freepart.bytesTransferred * 3);
    EXPECT_GT(per_api.simTime, freepart.simTime);
}

TEST(Techniques, MemoryBasedProtectsDataButFailsDos)
{
    TechniqueReport report =
        evaluator().evaluate(Technique::MemoryBased);
    EXPECT_TRUE(report.checks.templateCorruptionMitigated);
    EXPECT_TRUE(report.checks.templatePermsEnforced);
    EXPECT_FALSE(report.preventsDos); // a fault kills the only process
    EXPECT_EQ(report.processCount, 1u);
    EXPECT_EQ(report.ipcCount, 0u);
}

TEST(Techniques, Table1OverheadOrdering)
{
    auto reports = evaluator().evaluateAll();
    double base = 0, freepart = 0, per_api = 0, entire = 0,
           code_data = 0;
    for (const TechniqueReport &report : reports) {
        double t = static_cast<double>(report.simTime);
        switch (report.technique) {
          case Technique::NoIsolation:
            base = t;
            break;
          case Technique::FreePart:
            freepart = t;
            break;
          case Technique::LibPerApi:
            per_api = t;
            break;
          case Technique::LibEntire:
            entire = t;
            break;
          case Technique::CodeApiData:
            code_data = t;
            break;
          default:
            break;
        }
    }
    // Scale-robust parts of the Table 9 ordering (the full ordering,
    // including code+data < per-API, is calibrated at the realistic
    // image sizes the bench harness uses; see EXPERIMENTS.md).
    EXPECT_LT(base, freepart);
    EXPECT_LT(freepart, code_data);
    EXPECT_LT(base, per_api);
    EXPECT_LT(entire, code_data);
}

TEST(Rubric, ScoreToLevels)
{
    SecurityChecks checks;
    EXPECT_STREQ(checks.dataLevel(), "Not");
    checks.omrCropCorruptionMitigated = true;
    checks.templateCorruptionMitigated = true;
    EXPECT_STREQ(checks.dataLevel(), "Less");
    checks.omrCropPermsEnforced = true;
    checks.templatePermsEnforced = true;
    EXPECT_STREQ(checks.dataLevel(), "Mostly");
    checks.omrCropNotShared = true;
    checks.templateNotShared = true;
    EXPECT_STREQ(checks.dataLevel(), "Highly");
}

} // namespace
} // namespace freepart::baselines
