/**
 * @file
 * Tests for the deterministic fault-injection framework: spec
 * trigger semantics (after/count/pid/probability), replay
 * determinism, and each instrumented fault point (syscall entry,
 * device reads, ring transfers, respawn) observed end-to-end through
 * the runtime's recovery machinery.
 */

#include <gtest/gtest.h>

#include "core/runtime.hh"
#include "osim/fault_injection.hh"
#include "util/logging.hh"

namespace freepart::core {
namespace {

struct FaultEnv {
    FaultEnv() : registry(fw::buildFullRegistry())
    {
        analysis::HybridCategorizer categorizer(registry);
        cats = categorizer.categorizeAll();
    }

    std::unique_ptr<FreePartRuntime>
    makeRuntime(uint64_t seed = 0x5eedfa17ull, RuntimeConfig config = {})
    {
        kernel = std::make_unique<osim::Kernel>();
        injector = std::make_unique<osim::FaultInjector>(seed);
        kernel->setFaultInjector(injector.get());
        fw::seedFixtureFiles(*kernel);
        return std::make_unique<FreePartRuntime>(
            *kernel, registry, cats, PartitionPlan::freePartDefault(),
            config);
    }

    fw::ApiRegistry registry;
    analysis::Categorization cats;
    std::unique_ptr<osim::Kernel> kernel;
    std::unique_ptr<osim::FaultInjector> injector;
};

FaultEnv &
shared()
{
    static FaultEnv instance;
    return instance;
}

ipc::Value
pathArg(const char *path)
{
    return ipc::Value(std::string(path));
}

TEST(FaultInjector, AfterAndCountGateFiring)
{
    osim::FaultInjector inj(1);
    osim::FaultSpec spec;
    spec.point = osim::FaultPoint::AgentCall;
    spec.action = osim::FaultAction::Crash;
    spec.after = 2;
    spec.count = 2;
    inj.schedule(spec);
    EXPECT_EQ(inj.query(osim::FaultPoint::AgentCall, 3),
              osim::FaultAction::None);
    EXPECT_EQ(inj.query(osim::FaultPoint::AgentCall, 3),
              osim::FaultAction::None);
    EXPECT_EQ(inj.query(osim::FaultPoint::AgentCall, 3),
              osim::FaultAction::Crash);
    EXPECT_EQ(inj.query(osim::FaultPoint::AgentCall, 3),
              osim::FaultAction::Crash);
    EXPECT_EQ(inj.query(osim::FaultPoint::AgentCall, 3),
              osim::FaultAction::None);
    EXPECT_EQ(inj.injectedCount(), 2u);
    EXPECT_EQ(inj.hits(osim::FaultPoint::AgentCall), 5u);
}

TEST(FaultInjector, PidScopingAndPointScoping)
{
    osim::FaultInjector inj(1);
    osim::FaultSpec spec;
    spec.point = osim::FaultPoint::DeviceRead;
    spec.action = osim::FaultAction::Transient;
    spec.pid = 7;
    spec.count = 0; // unlimited
    inj.schedule(spec);
    EXPECT_EQ(inj.query(osim::FaultPoint::DeviceRead, 8),
              osim::FaultAction::None);
    EXPECT_EQ(inj.query(osim::FaultPoint::SyscallEntry, 7),
              osim::FaultAction::None);
    EXPECT_EQ(inj.query(osim::FaultPoint::DeviceRead, 7),
              osim::FaultAction::Transient);
    EXPECT_EQ(inj.query(osim::FaultPoint::DeviceRead, 7),
              osim::FaultAction::Transient);
}

TEST(FaultInjector, ProbabilisticPlanReplaysIdentically)
{
    auto run = [](uint64_t seed) {
        osim::FaultInjector inj(seed);
        osim::FaultSpec spec;
        spec.point = osim::FaultPoint::SyscallEntry;
        spec.action = osim::FaultAction::Crash;
        spec.count = 0;
        spec.probability = 0.3;
        inj.schedule(spec);
        std::vector<uint64_t> fired;
        for (int i = 0; i < 200; ++i)
            if (inj.query(osim::FaultPoint::SyscallEntry, 5) !=
                osim::FaultAction::None)
                fired.push_back(inj.hits(osim::FaultPoint::SyscallEntry));
        return fired;
    };
    std::vector<uint64_t> a = run(42), b = run(42), c = run(43);
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a.empty());
    EXPECT_LT(a.size(), 200u);
    EXPECT_NE(a, c); // a different seed gives a different trace
}

TEST(FaultInjector, CorruptIsDeterministicAndMutates)
{
    std::vector<uint8_t> original(64, 0xab);
    std::vector<uint8_t> one = original, two = original;
    osim::FaultInjector(9).corrupt(one);
    osim::FaultInjector(9).corrupt(two);
    EXPECT_EQ(one, two);
    EXPECT_NE(one, original);
}

TEST(FaultPoints, NthSyscallCrashIsRecovered)
{
    FaultEnv &e = shared();
    auto runtime = e.makeRuntime();
    osim::FaultSpec spec;
    spec.point = osim::FaultPoint::SyscallEntry;
    spec.action = osim::FaultAction::Crash;
    spec.pid = runtime->agentPid(0);
    spec.after = 1; // the 2nd syscall of the loading agent
    e.injector->schedule(spec);
    ApiResult result =
        runtime->invoke("cv2.imread", {pathArg("/data/test.fpim")});
    EXPECT_TRUE(result.ok) << result.error;
    EXPECT_TRUE(result.agentCrashed);
    EXPECT_EQ(runtime->stats().agentCrashes, 1u);
    EXPECT_GE(runtime->stats().agentRestarts, 1u);
    EXPECT_EQ(e.injector->injectedCount(), 1u);
}

TEST(FaultPoints, TransientSyscallFaultRetriesWithoutRestart)
{
    FaultEnv &e = shared();
    auto runtime = e.makeRuntime();
    osim::FaultSpec spec;
    spec.point = osim::FaultPoint::SyscallEntry;
    spec.action = osim::FaultAction::Transient;
    spec.pid = runtime->agentPid(0);
    e.injector->schedule(spec);
    ApiResult result =
        runtime->invoke("cv2.imread", {pathArg("/data/test.fpim")});
    EXPECT_TRUE(result.ok) << result.error;
    EXPECT_FALSE(result.agentCrashed);
    EXPECT_EQ(runtime->stats().transientFaults, 1u);
    EXPECT_EQ(runtime->stats().agentCrashes, 0u);
    EXPECT_EQ(runtime->stats().agentRestarts, 0u);
    EXPECT_EQ(runtime->stats().retriedCalls, 1u);
}

TEST(FaultPoints, DeviceReadTransientIsRetried)
{
    FaultEnv &e = shared();
    auto runtime = e.makeRuntime();
    osim::FaultSpec spec;
    spec.point = osim::FaultPoint::DeviceRead;
    spec.action = osim::FaultAction::Transient;
    spec.pid = runtime->agentPid(0);
    e.injector->schedule(spec);
    ApiResult frame = runtime->invoke("cv2.VideoCapture.read", {});
    EXPECT_TRUE(frame.ok) << frame.error;
    EXPECT_EQ(runtime->stats().transientFaults, 1u);
    EXPECT_EQ(runtime->stats().agentCrashes, 0u);
}

TEST(FaultPoints, LostRequestOnRingIsRedelivered)
{
    FaultEnv &e = shared();
    auto runtime = e.makeRuntime();
    osim::FaultSpec spec;
    spec.point = osim::FaultPoint::RingTransfer;
    spec.action = osim::FaultAction::Transient;
    spec.pid = runtime->agentPid(0); // request direction only
    e.injector->schedule(spec);
    ApiResult result =
        runtime->invoke("cv2.imread", {pathArg("/data/test.fpim")});
    EXPECT_TRUE(result.ok) << result.error;
    EXPECT_EQ(runtime->stats().channelLosses, 1u);
    EXPECT_EQ(runtime->stats().retriedCalls, 1u);
    // The request never executed, so the retry is a fresh execution,
    // not a dedup hit.
    EXPECT_EQ(runtime->stats().dedupHits, 0u);
}

TEST(FaultPoints, CorruptedRingMessageIsRejectedAndRetried)
{
    FaultEnv &e = shared();
    auto runtime = e.makeRuntime();
    osim::FaultSpec spec;
    spec.point = osim::FaultPoint::RingTransfer;
    spec.action = osim::FaultAction::Corrupt;
    spec.pid = runtime->agentPid(0);
    e.injector->schedule(spec);
    ApiResult result =
        runtime->invoke("cv2.imread", {pathArg("/data/test.fpim")});
    EXPECT_TRUE(result.ok) << result.error;
    EXPECT_GE(runtime->stats().channelLosses, 1u);
}

TEST(FaultPoints, RespawnCrashMakesRestartFail)
{
    FaultEnv &e = shared();
    auto runtime = e.makeRuntime();
    osim::FaultSpec spec;
    spec.point = osim::FaultPoint::Respawn;
    spec.action = osim::FaultAction::Crash;
    spec.pid = runtime->agentPid(1);
    e.injector->schedule(spec);
    e.kernel->faultProcess(
        e.kernel->process(runtime->agentPid(1)), "induced");
    EXPECT_FALSE(runtime->restartAgent(1)); // stillborn incarnation
    EXPECT_TRUE(runtime->restartAgent(1));  // fault spent; next works
    EXPECT_TRUE(runtime->agentAlive(1));
}

TEST(FaultPoints, EndToEndRecoveryTraceIsDeterministic)
{
    auto run = [] {
        FaultEnv e;
        auto runtime = e.makeRuntime(1234);
        osim::FaultSpec spec;
        spec.point = osim::FaultPoint::AgentCall;
        spec.action = osim::FaultAction::Crash;
        spec.count = 0;
        spec.probability = 0.15;
        e.injector->schedule(spec);
        uint64_t ok_calls = 0;
        for (int i = 0; i < 30; ++i) {
            uint64_t id = runtime->createHostMat(8, 8, 1, i, "m");
            ApiResult result = runtime->invoke(
                "cv2.GaussianBlur",
                {ipc::Value(ipc::ObjectRef{kHostPartition, id})});
            ok_calls += result.ok;
        }
        RunStats stats = runtime->stats();
        return std::tuple<uint64_t, uint64_t, uint64_t, uint64_t,
                          osim::SimTime>(
            ok_calls, stats.agentCrashes, stats.agentRestarts,
            e.injector->injectedCount(), e.kernel->now());
    };
    auto a = run(), b = run();
    EXPECT_EQ(a, b);
    EXPECT_GT(std::get<1>(a), 0u); // faults actually fired
}

} // namespace
} // namespace freepart::core
