/**
 * @file
 * Attack-driver tests: every Table 5 CVE exploit must succeed against
 * an unprotected run and be mitigated under FreePart; the §5.3
 * exfiltration/corruption scenarios and the case studies (§5.4, A.7)
 * must reproduce.
 */

#include <gtest/gtest.h>

#include "apps/drone.hh"
#include "apps/image_viewer.hh"
#include "attacks/attack_driver.hh"
#include "attacks/cve_corpus.hh"

namespace freepart::attacks {
namespace {

struct AttackEnv {
    AttackEnv() : registry(fw::buildFullRegistry())
    {
        analysis::HybridCategorizer categorizer(registry);
        cats = categorizer.categorizeAll();
    }

    std::unique_ptr<core::FreePartRuntime>
    makeRuntime(core::PartitionPlan plan,
                core::RuntimeConfig config = {})
    {
        kernel = std::make_unique<osim::Kernel>();
        fw::seedFixtureFiles(*kernel);
        auto runtime = std::make_unique<core::FreePartRuntime>(
            *kernel, registry, cats, std::move(plan), config);
        return runtime;
    }

    fw::ApiRegistry registry;
    analysis::Categorization cats;
    std::unique_ptr<osim::Kernel> kernel;
};

AttackEnv &
env()
{
    static AttackEnv instance;
    return instance;
}

TEST(CveCorpus, EighteenEvaluationCves)
{
    EXPECT_EQ(evaluationCves().size(), 18u);
    for (const CveRecord &record : evaluationCves()) {
        // Every corpus CVE maps to a registered API annotated with
        // that CVE.
        const fw::ApiDescriptor &api =
            env().registry.require(record.api);
        EXPECT_NE(std::find(api.cves.begin(), api.cves.end(),
                            record.id),
                  api.cves.end())
            << record.id;
        EXPECT_EQ(api.declaredType, record.apiType) << record.id;
    }
}

TEST(CveCorpus, LookupAndCaseStudies)
{
    EXPECT_EQ(cveById("CVE-2017-12597").api, "cv2.imread");
    EXPECT_EQ(cveById("CVE-2020-10378").api, "pil.Image.open");
    EXPECT_EQ(cveById("SIM-STEGONET").api, "torch.load");
    EXPECT_ANY_THROW(cveById("CVE-0000-0000"));
}

TEST(AttackDriver, CorruptionSucceedsWithoutIsolation)
{
    core::RuntimeConfig config;
    config.enforceMemoryProtection = false;
    config.restrictSyscalls = false;
    auto runtime =
        env().makeRuntime(core::PartitionPlan::inHost(), config);
    osim::Addr secret = runtime->hostProcess().space().alloc(64);
    runtime->hostProcess().space().write(secret, "SENSITIVE", 9);

    AttackDriver driver(*runtime, env().registry);
    AttackSpec spec;
    spec.cve = "CVE-2017-12597";
    spec.goal = AttackGoal::CorruptData;
    spec.targetPid = runtime->hostPid();
    spec.targetAddr = secret;
    spec.targetLen = 8;
    AttackOutcome outcome = driver.launch(spec);
    EXPECT_TRUE(outcome.dataCorrupted);
    EXPECT_FALSE(outcome.mitigated(spec.goal));
    // The attacker's mark landed.
    char mark[9] = {};
    runtime->hostProcess().space().read(secret, mark, 8);
    EXPECT_EQ(std::string(mark), "HACKED!!");
}

TEST(AttackDriver, CorruptionBlockedByFreePart)
{
    auto runtime =
        env().makeRuntime(core::PartitionPlan::freePartDefault());
    osim::Addr secret = runtime->allocHostData("secret", 64);
    runtime->hostProcess().space().write(secret, "SENSITIVE", 9);

    AttackDriver driver(*runtime, env().registry);
    AttackSpec spec;
    spec.cve = "CVE-2017-12597";
    spec.goal = AttackGoal::CorruptData;
    spec.targetPid = runtime->hostPid();
    spec.targetAddr = secret;
    spec.targetLen = 8;
    AttackOutcome outcome = driver.launch(spec);
    EXPECT_FALSE(outcome.dataCorrupted);
    EXPECT_FALSE(outcome.hostCrashed);
    EXPECT_TRUE(outcome.mitigated(spec.goal));
}

TEST(AttackDriver, ExfiltrationSucceedsWithoutIsolation)
{
    core::RuntimeConfig config;
    config.enforceMemoryProtection = false;
    config.restrictSyscalls = false;
    auto runtime =
        env().makeRuntime(core::PartitionPlan::inHost(), config);
    osim::Addr secret = runtime->hostProcess().space().alloc(32);
    runtime->hostProcess().space().write(secret,
                                         "user-profile-secret!", 20);
    AttackDriver driver(*runtime, env().registry);
    AttackSpec spec;
    spec.cve = "CVE-2020-10378";
    spec.goal = AttackGoal::Exfiltrate;
    spec.targetPid = runtime->hostPid();
    spec.targetAddr = secret;
    spec.targetLen = 20;
    AttackOutcome outcome = driver.launch(spec);
    EXPECT_TRUE(outcome.dataLeaked);
    EXPECT_EQ(env().kernel->network().sends().size(), 1u);
}

TEST(AttackDriver, ExfiltrationBlockedByFreePart)
{
    auto runtime =
        env().makeRuntime(core::PartitionPlan::freePartDefault());
    osim::Addr secret = runtime->allocHostData("secret", 32);
    runtime->hostProcess().space().write(secret,
                                         "user-profile-secret!", 20);
    AttackDriver driver(*runtime, env().registry);
    AttackSpec spec;
    spec.cve = "CVE-2020-10378";
    spec.goal = AttackGoal::Exfiltrate;
    spec.targetPid = runtime->hostPid();
    spec.targetAddr = secret;
    spec.targetLen = 20;
    AttackOutcome outcome = driver.launch(spec);
    EXPECT_FALSE(outcome.dataLeaked);
    EXPECT_TRUE(outcome.mitigated(spec.goal));
    EXPECT_EQ(env().kernel->network().sends().size(), 0u);
}

TEST(AttackDriver, DosContainedByFreePart)
{
    auto runtime =
        env().makeRuntime(core::PartitionPlan::freePartDefault());
    AttackDriver driver(*runtime, env().registry);
    AttackSpec spec;
    spec.cve = "CVE-2017-14136";
    spec.goal = AttackGoal::Dos;
    AttackOutcome outcome = driver.launch(spec);
    EXPECT_FALSE(outcome.hostCrashed);
    EXPECT_TRUE(outcome.executorCrashed);
    EXPECT_TRUE(outcome.mitigated(spec.goal));
}

TEST(AttackDriver, DosKillsUnprotectedHost)
{
    core::RuntimeConfig config;
    config.enforceMemoryProtection = false;
    config.restrictSyscalls = false;
    auto runtime =
        env().makeRuntime(core::PartitionPlan::inHost(), config);
    AttackDriver driver(*runtime, env().registry);
    AttackSpec spec;
    spec.cve = "CVE-2017-14136";
    spec.goal = AttackGoal::Dos;
    AttackOutcome outcome = driver.launch(spec);
    EXPECT_TRUE(outcome.hostCrashed);
    EXPECT_FALSE(outcome.mitigated(spec.goal));
}

TEST(AttackDriver, CodeRewriteBlockedBySyscallFilter)
{
    auto runtime =
        env().makeRuntime(core::PartitionPlan::freePartDefault());
    // The "API code" page inside the loading agent.
    osim::Pid agent = runtime->agentPid(0);
    osim::Addr code = env().kernel->process(agent).space().alloc(
        64, osim::PermRX, "code");
    AttackDriver driver(*runtime, env().registry);
    AttackSpec spec;
    spec.cve = "CVE-2017-17760";
    spec.goal = AttackGoal::CodeRewrite;
    spec.targetPid = agent;
    spec.targetAddr = code;
    spec.targetLen = 4;
    AttackOutcome outcome = driver.launch(spec);
    EXPECT_FALSE(outcome.dataCorrupted);
    EXPECT_TRUE(outcome.blockedBySyscall);
    EXPECT_TRUE(outcome.mitigated(spec.goal));
}

TEST(AttackDriver, ForkBombBlockedBySyscallFilter)
{
    auto runtime =
        env().makeRuntime(core::PartitionPlan::freePartDefault());
    AttackDriver driver(*runtime, env().registry);
    AttackSpec spec;
    spec.cve = "SIM-STEGONET";
    spec.goal = AttackGoal::ForkBomb;
    AttackOutcome outcome = driver.launch(spec);
    EXPECT_EQ(outcome.childrenSpawned, 0u);
    EXPECT_TRUE(outcome.blockedBySyscall);
    EXPECT_TRUE(outcome.mitigated(spec.goal));
}

TEST(AttackDriver, ForkBombSucceedsWithoutIsolation)
{
    core::RuntimeConfig config;
    config.enforceMemoryProtection = false;
    config.restrictSyscalls = false;
    auto runtime =
        env().makeRuntime(core::PartitionPlan::inHost(), config);
    AttackDriver driver(*runtime, env().registry);
    AttackSpec spec;
    spec.cve = "SIM-STEGONET";
    spec.goal = AttackGoal::ForkBomb;
    AttackOutcome outcome = driver.launch(spec);
    EXPECT_EQ(outcome.childrenSpawned, 8u);
    EXPECT_FALSE(outcome.mitigated(spec.goal));
}

/**
 * Parameterized sweep: all 18 Table 5 CVEs are mitigated under
 * FreePart (the §5 "Correctness" claim: no false negatives).
 */
class Table5Sweep : public ::testing::TestWithParam<std::string>
{
};

TEST_P(Table5Sweep, MitigatedUnderFreePart)
{
    const CveRecord &record = cveById(GetParam());
    auto runtime =
        env().makeRuntime(core::PartitionPlan::freePartDefault());
    osim::Addr secret = runtime->allocHostData("critical", 64);
    runtime->hostProcess().space().write(secret, "CRITICAL", 8);

    AttackDriver driver(*runtime, env().registry);
    AttackSpec spec;
    spec.cve = record.id;
    spec.goal = goalForPayload(record.defaultPayload);
    spec.targetPid = runtime->hostPid();
    spec.targetAddr = secret;
    spec.targetLen = 8;
    AttackOutcome outcome = driver.launch(spec);
    EXPECT_TRUE(outcome.mitigated(spec.goal)) << record.id;
    EXPECT_TRUE(runtime->hostAlive());
}

TEST_P(Table5Sweep, SucceedsOrCrashesHostWithoutIsolation)
{
    const CveRecord &record = cveById(GetParam());
    core::RuntimeConfig config;
    config.enforceMemoryProtection = false;
    config.restrictSyscalls = false;
    auto runtime =
        env().makeRuntime(core::PartitionPlan::inHost(), config);
    osim::Addr secret = runtime->hostProcess().space().alloc(64);
    runtime->hostProcess().space().write(secret, "CRITICAL", 8);

    AttackDriver driver(*runtime, env().registry);
    AttackSpec spec;
    spec.cve = record.id;
    spec.goal = goalForPayload(record.defaultPayload);
    spec.targetPid = runtime->hostPid();
    spec.targetAddr = secret;
    spec.targetLen = 8;
    AttackOutcome outcome = driver.launch(spec);
    EXPECT_FALSE(outcome.mitigated(spec.goal)) << record.id;
}

std::vector<std::string>
allCveIds()
{
    std::vector<std::string> ids;
    for (const CveRecord &record : evaluationCves())
        ids.push_back(record.id);
    return ids;
}

std::string
cveParamName(const ::testing::TestParamInfo<std::string> &info)
{
    std::string name = info.param;
    for (char &c : name)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return name;
}

INSTANTIATE_TEST_SUITE_P(AllCves, Table5Sweep,
                         ::testing::ValuesIn(allCveIds()),
                         cveParamName);

TEST(CaseStudy, DroneCorruptionAttackContained)
{
    // §5.4.1: CVE-2017-12606 flips self.speed to reverse the drone.
    auto runtime =
        env().makeRuntime(core::PartitionPlan::freePartDefault());
    auto frames = apps::DroneTracker::seedFrames(*env().kernel, 1);
    apps::DroneTracker drone(*runtime);
    drone.setup();
    drone.processFrame(frames[0]);

    AttackDriver driver(*runtime, env().registry);
    AttackSpec spec;
    spec.cve = "CVE-2017-12606";
    spec.goal = AttackGoal::CorruptData;
    spec.targetPid = runtime->hostPid();
    spec.targetAddr = drone.speedAddr();
    spec.targetLen = sizeof(double);
    AttackOutcome outcome = driver.launch(spec);
    EXPECT_FALSE(outcome.dataCorrupted);
    EXPECT_DOUBLE_EQ(drone.speed(), 0.3); // still flying forward
    EXPECT_TRUE(drone.operable());
}

TEST(CaseStudy, DroneCorruptionSucceedsWithoutFreePart)
{
    core::RuntimeConfig config;
    config.enforceMemoryProtection = false;
    config.restrictSyscalls = false;
    auto runtime =
        env().makeRuntime(core::PartitionPlan::inHost(), config);
    auto frames = apps::DroneTracker::seedFrames(*env().kernel, 1);
    apps::DroneTracker drone(*runtime);
    drone.setup();
    drone.processFrame(frames[0]);

    // Craft the speed-flip payload by hand: overwrite the double.
    AttackDriver driver(*runtime, env().registry);
    AttackSpec spec;
    spec.cve = "CVE-2017-12606";
    spec.goal = AttackGoal::CorruptData;
    spec.targetPid = runtime->hostPid();
    spec.targetAddr = drone.speedAddr();
    spec.targetLen = sizeof(double);
    AttackOutcome outcome = driver.launch(spec);
    EXPECT_TRUE(outcome.dataCorrupted);
    EXPECT_NE(drone.speed(), 0.3);
}

TEST(CaseStudy, ViewerRecentFilesLeakBlocked)
{
    // §5.4.2: CVE-2020-10378 tries to leak the recent-file names.
    auto runtime =
        env().makeRuntime(core::PartitionPlan::freePartDefault());
    auto images = apps::ImageViewer::seedImages(*env().kernel, 2);
    apps::ImageViewer viewer(*runtime);
    viewer.setup();
    for (const std::string &image : images)
        viewer.openImage(image);
    ASSERT_FALSE(viewer.recentNames().empty());

    AttackDriver driver(*runtime, env().registry);
    AttackSpec spec;
    spec.cve = "CVE-2020-10378";
    spec.goal = AttackGoal::Exfiltrate;
    spec.targetPid = runtime->hostPid();
    spec.targetAddr = viewer.recentListAddr();
    spec.targetLen = 40;
    AttackOutcome outcome = driver.launch(spec);
    EXPECT_FALSE(outcome.dataLeaked);
    EXPECT_TRUE(outcome.mitigated(spec.goal));
    // Nothing about the albums reached the network.
    for (const osim::NetSendEvent &send :
         env().kernel->network().sends()) {
        std::string head(send.head.begin(), send.head.end());
        EXPECT_EQ(head.find("secret_album"), std::string::npos);
    }
}

} // namespace
} // namespace freepart::attacks
