/**
 * @file
 * Direct correctness tests for the MiniDNN tensor kernels, exercised
 * through the registered API bodies: convolution against hand-
 * computed values, pooling extrema/means, activation identities,
 * softmax normalization, the SGD step of Backward, and model-file
 * round trips.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "fw/api_registry.hh"
#include "fw/invoker.hh"
#include "osim/kernel.hh"

namespace freepart::fw {
namespace {

class DnnFixture : public ::testing::Test
{
  protected:
    DnnFixture()
        : reg(buildFullRegistry()), kernel(),
          proc(kernel.spawn("dnn-test")),
          store(kernel, proc.pid(), &counter),
          ctx(kernel, proc, store, devices, 0)
    {
        seedFixtureFiles(kernel);
    }

    /** Create a tensor with explicit values; returns its Ref. */
    ipc::Value
    tensor(std::vector<uint32_t> shape, std::vector<float> values)
    {
        TensorDesc t;
        t.shape = std::move(shape);
        t.addr = proc.space().alloc(t.byteLen(), osim::PermRW, "t");
        tensorWrite(proc.space(), t, values);
        return refValue(0, store.putTensor(t, "t"));
    }

    /** Run an API and read its first returned tensor. */
    std::vector<float>
    runToTensor(const std::string &api, ipc::ValueList args,
                std::vector<uint32_t> *shape_out = nullptr)
    {
        const ApiDescriptor &desc = reg.require(api);
        ipc::ValueList out = desc.fn(ctx, desc, args);
        const TensorDesc &t =
            store.tensor(out.at(0).asRef().objectId);
        if (shape_out)
            *shape_out = t.shape;
        return tensorRead(proc.space(), t);
    }

    ApiRegistry reg;
    osim::Kernel kernel;
    osim::Process &proc;
    uint64_t counter = 0;
    ObjectStore store;
    DeviceFds devices;
    ExecContext ctx;
};

TEST_F(DnnFixture, Conv2dIdentityKernel)
{
    // 1x1 "identity" conv: weight {1,1,1,1} with value 1 copies the
    // input.
    ipc::Value in = tensor({1, 3, 3},
                           {1, 2, 3, 4, 5, 6, 7, 8, 9});
    ipc::Value w = tensor({1, 1, 1, 1}, {1.f});
    std::vector<uint32_t> shape;
    auto out = runToTensor("torch.nn.Conv2d", {in, w}, &shape);
    EXPECT_EQ(shape, (std::vector<uint32_t>{1, 3, 3}));
    EXPECT_EQ(out,
              (std::vector<float>{1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST_F(DnnFixture, Conv2dHandComputedSum)
{
    // 3x3 all-ones kernel over a 4x4 ramp: each output is the sum of
    // the covered 3x3 window.
    std::vector<float> ramp(16);
    for (int i = 0; i < 16; ++i)
        ramp[static_cast<size_t>(i)] = static_cast<float>(i);
    ipc::Value in = tensor({1, 4, 4}, ramp);
    ipc::Value w = tensor({1, 1, 3, 3},
                          std::vector<float>(9, 1.f));
    std::vector<uint32_t> shape;
    auto out = runToTensor("tf.nn.conv2d", {in, w}, &shape);
    EXPECT_EQ(shape, (std::vector<uint32_t>{1, 2, 2}));
    // Window at (0,0): 0+1+2+4+5+6+8+9+10 = 45.
    EXPECT_FLOAT_EQ(out[0], 45.f);
    EXPECT_FLOAT_EQ(out[1], 54.f);
    EXPECT_FLOAT_EQ(out[2], 81.f);
    EXPECT_FLOAT_EQ(out[3], 90.f);
}

TEST_F(DnnFixture, Conv2dMultiChannelAccumulates)
{
    // Two input channels, kernel 1x1 with weights (2, 3):
    // out = 2*c0 + 3*c1.
    ipc::Value in = tensor({2, 2, 2},
                           {1, 1, 1, 1, 10, 10, 10, 10});
    ipc::Value w = tensor({1, 2, 1, 1}, {2.f, 3.f});
    auto out = runToTensor("torch.nn.Conv2d", {in, w});
    for (float v : out)
        EXPECT_FLOAT_EQ(v, 32.f);
}

TEST_F(DnnFixture, MaxPoolTakesWindowMaximum)
{
    ipc::Value in = tensor({1, 4, 4},
                           {1, 2, 5, 6,   //
                            3, 4, 7, 8,   //
                            9, 10, 13, 14, //
                            11, 12, 15, 16});
    std::vector<uint32_t> shape;
    auto out =
        runToTensor("torch.nn.MaxPool2d", {in}, &shape);
    EXPECT_EQ(shape, (std::vector<uint32_t>{1, 2, 2}));
    EXPECT_EQ(out, (std::vector<float>{4, 8, 12, 16}));
}

TEST_F(DnnFixture, AvgPoolTakesWindowMean)
{
    ipc::Value in = tensor({1, 2, 2}, {1, 3, 5, 7});
    auto out = runToTensor("tf.nn.avg_pool", {in});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_FLOAT_EQ(out[0], 4.f);
}

TEST_F(DnnFixture, ReluClampsNegatives)
{
    ipc::Value in = tensor({4}, {-2.f, -0.5f, 0.f, 3.f});
    auto out = runToTensor("torch.relu", {in});
    EXPECT_EQ(out, (std::vector<float>{0, 0, 0, 3}));
}

TEST_F(DnnFixture, SoftmaxSumsToOneAndPreservesOrder)
{
    ipc::Value in = tensor({4}, {1.f, 2.f, 3.f, 4.f});
    auto out = runToTensor("torch.softmax", {in});
    float sum = 0;
    for (float v : out)
        sum += v;
    EXPECT_NEAR(sum, 1.f, 1e-5);
    EXPECT_LT(out[0], out[1]);
    EXPECT_LT(out[2], out[3]);
    // Known value: e^4 / sum(e^1..e^4).
    double denom = std::exp(1.0) + std::exp(2.0) + std::exp(3.0) +
                   std::exp(4.0);
    EXPECT_NEAR(out[3], std::exp(4.0) / denom, 1e-5);
}

TEST_F(DnnFixture, SoftmaxNumericallyStableForLargeInputs)
{
    ipc::Value in = tensor({3}, {1000.f, 1000.f, 1000.f});
    auto out = runToTensor("torch.softmax", {in});
    for (float v : out)
        EXPECT_NEAR(v, 1.f / 3.f, 1e-5);
}

TEST_F(DnnFixture, LinearMatchesMatrixVectorProduct)
{
    ipc::Value in = tensor({3}, {1.f, 2.f, 3.f});
    // Weight rows: (1,0,0) -> 1; (1,1,1) -> 6.
    ipc::Value w = tensor({2, 3}, {1, 0, 0, 1, 1, 1});
    auto out = runToTensor("torch.nn.Linear", {in, w});
    EXPECT_EQ(out, (std::vector<float>{1.f, 6.f}));
}

TEST_F(DnnFixture, ArgmaxFindsMaximumIndex)
{
    const ApiDescriptor &desc = reg.require("torch.argmax");
    ipc::Value in = tensor({5}, {0.1f, 7.f, -3.f, 6.9f, 2.f});
    ipc::ValueList out = desc.fn(ctx, desc, {in});
    EXPECT_EQ(out.at(0).asU64(), 1u);
}

TEST_F(DnnFixture, MeanAveragesElements)
{
    const ApiDescriptor &desc = reg.require("np.mean");
    ipc::Value in = tensor({4}, {1.f, 2.f, 3.f, 10.f});
    ipc::ValueList out = desc.fn(ctx, desc, {in});
    EXPECT_DOUBLE_EQ(out.at(0).asF64(), 4.0);
}

TEST_F(DnnFixture, BackwardAppliesSgdStepInPlace)
{
    ipc::Value w = tensor({3}, {1.f, 1.f, 1.f});
    ipc::Value g = tensor({3}, {10.f, 0.f, -10.f});
    const ApiDescriptor &desc = reg.require("caffe.Net.Backward");
    ipc::ValueList out =
        desc.fn(ctx, desc, {w, g, ipc::Value(0.1)});
    // In-place update: the returned ref is the weight tensor.
    EXPECT_EQ(out.at(0).asRef().objectId, w.asRef().objectId);
    auto values = tensorRead(
        proc.space(), store.tensor(w.asRef().objectId));
    EXPECT_FLOAT_EQ(values[0], 0.f);
    EXPECT_FLOAT_EQ(values[1], 1.f);
    EXPECT_FLOAT_EQ(values[2], 2.f);
}

TEST_F(DnnFixture, TrainStepMovesWeightsTowardDataMean)
{
    ipc::Value w = tensor({2}, {0.f, 0.f});
    ipc::Value x = tensor({2}, {10.f, 10.f});
    const ApiDescriptor &desc =
        reg.require("tf.estimator.DNNClassifier.train");
    desc.fn(ctx, desc, {w, x});
    auto values = tensorRead(
        proc.space(), store.tensor(w.asRef().objectId));
    EXPECT_GT(values[0], 0.f);
    EXPECT_LT(values[0], 10.f);
    // A second step moves further.
    float first = values[0];
    desc.fn(ctx, desc, {w, x});
    values = tensorRead(proc.space(),
                        store.tensor(w.asRef().objectId));
    EXPECT_GT(values[0], first);
}

TEST_F(DnnFixture, ModelSaveLoadRoundTrip)
{
    ipc::Value w = tensor({4}, {1.5f, -2.f, 0.f, 42.f});
    const ApiDescriptor &save = reg.require("torch.save");
    save.fn(ctx, save,
            {ipc::Value(std::string("/models/w.fpt")), w});
    ASSERT_TRUE(kernel.vfs().exists("/models/w.fpt"));

    const ApiDescriptor &load = reg.require("torch.load");
    ipc::ValueList out = load.fn(
        ctx, load, {ipc::Value(std::string("/models/w.fpt"))});
    auto values = tensorRead(
        proc.space(), store.tensor(out.at(0).asRef().objectId));
    EXPECT_EQ(values, (std::vector<float>{1.5f, -2.f, 0.f, 42.f}));
}

TEST_F(DnnFixture, Conv2dRejectsMismatchedChannels)
{
    ipc::Value in = tensor({2, 4, 4}, std::vector<float>(32, 1.f));
    ipc::Value w = tensor({1, 3, 3, 3},
                          std::vector<float>(27, 1.f));
    const ApiDescriptor &desc = reg.require("torch.nn.Conv2d");
    EXPECT_ANY_THROW(desc.fn(ctx, desc, {in, w}));
}

TEST_F(DnnFixture, Conv2dRejectsKernelLargerThanInput)
{
    ipc::Value in = tensor({1, 2, 2}, {1, 2, 3, 4});
    ipc::Value w = tensor({1, 1, 3, 3},
                          std::vector<float>(9, 1.f));
    const ApiDescriptor &desc = reg.require("tf.nn.conv2d");
    EXPECT_ANY_THROW(desc.fn(ctx, desc, {in, w}));
}

TEST_F(DnnFixture, LinearRejectsDimensionMismatch)
{
    ipc::Value in = tensor({4}, {1, 2, 3, 4});
    ipc::Value w = tensor({2, 3}, {1, 0, 0, 0, 1, 0});
    const ApiDescriptor &desc = reg.require("torch.nn.Linear");
    EXPECT_ANY_THROW(desc.fn(ctx, desc, {in, w}));
}

TEST_F(DnnFixture, GetFileDownloadsSpillsAndReloads)
{
    const ApiDescriptor &desc =
        reg.require("tf.keras.utils.get_file");
    FlowTrace trace;
    ctx.setTraceSink(&trace);
    ipc::ValueList out = desc.fn(
        ctx, desc, {ipc::Value(std::string("http://x/weights"))});
    ctx.setTraceSink(nullptr);
    ASSERT_EQ(out.size(), 1u);
    // The observed flow is the full download->spill->reload chain.
    ASSERT_EQ(trace.ops.size(), 3u);
    EXPECT_EQ(trace.ops[0].src, StorageKind::Dev);
    EXPECT_EQ(trace.ops[1].dst, StorageKind::File);
    EXPECT_EQ(trace.ops[2].src, StorageKind::File);
    // The spilled cache file exists.
    EXPECT_TRUE(kernel.vfs().exists("/tmp/get_file.cache"));
    // Deterministic content: a second download returns identical
    // bytes.
    const StoredObject &obj = store.get(out[0].asRef().objectId);
    std::vector<uint8_t> first(obj.byteLen);
    proc.space().read(obj.addr, first.data(), obj.byteLen);
    ipc::ValueList again = desc.fn(
        ctx, desc, {ipc::Value(std::string("http://x/weights"))});
    const StoredObject &obj2 = store.get(again[0].asRef().objectId);
    std::vector<uint8_t> second(obj2.byteLen);
    proc.space().read(obj2.addr, second.data(), obj2.byteLen);
    EXPECT_EQ(first, second);
}

TEST_F(DnnFixture, TorchTensorFromBlob)
{
    const ApiDescriptor &desc = reg.require("torch.tensor");
    std::vector<uint8_t> blob(3 * sizeof(float));
    float values[3] = {1.5f, 2.5f, 3.5f};
    std::memcpy(blob.data(), values, sizeof(values));
    ipc::ValueList out =
        desc.fn(ctx, desc, {ipc::Value(std::move(blob))});
    auto read = tensorRead(
        proc.space(), store.tensor(out.at(0).asRef().objectId));
    EXPECT_EQ(read, (std::vector<float>{1.5f, 2.5f, 3.5f}));
}

} // namespace
} // namespace freepart::fw
