/**
 * @file
 * Hot-path regression tests for the batched zero-copy RPC transport
 * and the dirty-epoch checkpoint machinery: ring wraparound under
 * batched and reserve/commit producers, codec edge cases (empty
 * payloads, slot-exact records, batch-of-one equivalence, corrupted
 * batch trailers), incremental-checkpoint byte savings and restore
 * fidelity, and the bounded LRU dedup cache.
 */

#include <gtest/gtest.h>

#include "core/dedup_cache.hh"
#include "core/runtime.hh"
#include "fw/image_format.hh"
#include "ipc/channel.hh"
#include "ipc/codec.hh"
#include "ipc/spsc_ring.hh"
#include "osim/fault_injection.hh"

namespace freepart {
namespace {

// ---- Ring wraparound under the batched producers ---------------------

std::vector<uint8_t>
patternRecord(size_t len, uint8_t seed)
{
    std::vector<uint8_t> rec(len);
    for (size_t i = 0; i < len; ++i)
        rec[i] = static_cast<uint8_t>(seed + i * 7);
    return rec;
}

TEST(RingWraparound, BatchedPushPreservesFifoAcrossManyWraps)
{
    // Capacity far smaller than the total traffic: every few batches
    // the free-running indices cross the wrap boundary at a different
    // offset, exercising the split memcpy in copyIn/copyOut.
    std::vector<uint8_t> region(ipc::SpscRing::kHeaderBytes + 256);
    ipc::SpscRing ring =
        ipc::SpscRing::create(region.data(), region.size());

    uint8_t produced = 0, consumed = 0;
    std::vector<std::vector<uint8_t>> out;
    for (int round = 0; round < 500; ++round) {
        std::vector<std::vector<uint8_t>> batch;
        for (size_t len : {1u + (round % 40u), 17u, 0u})
            batch.push_back(patternRecord(len, produced++));
        if (!ring.tryPushBatch(batch)) {
            // Drain everything, then the batch must fit.
            out.clear();
            while (ring.tryPopBatch(out, 16) > 0) {
            }
            for (const auto &rec : out) {
                std::vector<uint8_t> want =
                    patternRecord(rec.size(), consumed++);
                ASSERT_EQ(rec, want);
            }
            ASSERT_TRUE(ring.tryPushBatch(batch));
        }
    }
    out.clear();
    while (ring.tryPopBatch(out, 16) > 0) {
    }
    for (const auto &rec : out)
        ASSERT_EQ(rec, patternRecord(rec.size(), consumed++));
    EXPECT_EQ(consumed, produced);
    EXPECT_TRUE(ring.empty());
}

TEST(RingWraparound, ReserveCommitStreamsAcrossWrapBoundary)
{
    std::vector<uint8_t> region(ipc::SpscRing::kHeaderBytes + 128);
    ipc::SpscRing ring =
        ipc::SpscRing::create(region.data(), region.size());

    std::vector<uint8_t> out;
    for (int round = 0; round < 300; ++round) {
        size_t len = 1 + (round * 13) % 90;
        std::vector<uint8_t> payload =
            patternRecord(len, static_cast<uint8_t>(round));
        ipc::SpscRing::Reservation res;
        while (!ring.tryReserve(len, res))
            ASSERT_TRUE(ring.tryPop(out));
        // Stream in two unequal chunks so the reservation itself can
        // straddle the wrap.
        size_t first = len / 3;
        ring.reservationWrite(res, payload.data(), first);
        ring.reservationWrite(res, payload.data() + first,
                              len - first);
        // Consumer must not see the record before commit.
        size_t pending_before = ring.size();
        ring.commit(res);
        EXPECT_GT(ring.size(), pending_before);
    }
    while (ring.tryPop(out)) {
        ASSERT_FALSE(out.empty());
        // Every byte follows the generator pattern of its seed byte.
        uint8_t seed = out[0];
        EXPECT_EQ(out, patternRecord(out.size(), seed));
    }
}

// ---- Codec edge cases ------------------------------------------------

ipc::Message
makeRequest(uint64_t seq, ipc::ValueList values)
{
    ipc::Message msg;
    msg.kind = ipc::MsgKind::Request;
    msg.seq = seq;
    msg.apiId = 3;
    msg.values = std::move(values);
    return msg;
}

TEST(CodecEdge, ZeroLengthPayloadsRoundTripInABatch)
{
    ipc::ValueList values;
    values.emplace_back(std::vector<uint8_t>{}); // empty blob
    values.emplace_back(std::string{});          // empty string
    values.emplace_back();                       // None
    std::vector<ipc::Message> batch = {
        makeRequest(1, std::move(values)),
        makeRequest(2, {}), // no values at all
    };
    std::vector<ipc::Message> back =
        ipc::decodeBatch(ipc::encodeBatch(batch));
    ASSERT_EQ(back.size(), 2u);
    ASSERT_EQ(back[0].values.size(), 3u);
    EXPECT_TRUE(back[0].values[0].asBlob().empty());
    EXPECT_TRUE(back[0].values[1].asStr().empty());
    EXPECT_TRUE(back[0].values[2].isNone());
    EXPECT_TRUE(back[1].values.empty());
    EXPECT_EQ(back[1].seq, 2u);
}

TEST(CodecEdge, MaxSizeRecordExactlyFillsRingSlot)
{
    // Size the ring so one batch frame consumes the data area to the
    // last byte; the push must succeed, and any further record (even
    // an empty one needs its length prefix) must be rejected.
    std::vector<ipc::Message> batch = {makeRequest(
        7, {ipc::Value(std::vector<uint8_t>(1000, 0x5a))})};
    std::vector<uint8_t> wire = ipc::encodeBatch(batch);
    ASSERT_EQ(wire.size(), ipc::batchWireSize(batch));

    size_t cap = ipc::SpscRing::kRecordPrefix + wire.size();
    std::vector<uint8_t> region(ipc::SpscRing::kHeaderBytes + cap);
    ipc::SpscRing ring =
        ipc::SpscRing::create(region.data(), region.size());
    ASSERT_EQ(ring.capacity(), cap);
    ASSERT_TRUE(ring.tryPush(wire.data(), wire.size()));
    EXPECT_EQ(ring.size(), cap);
    EXPECT_FALSE(ring.tryPush(nullptr, 0)); // prefix no longer fits

    std::vector<uint8_t> out;
    ASSERT_TRUE(ring.tryPop(out));
    std::vector<ipc::Message> back = ipc::decodeBatch(out);
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back[0].values[0].asBlob().size(), 1000u);

    // One byte more than slot-exact never fits an empty ring.
    std::vector<ipc::Message> over = {makeRequest(
        8, {ipc::Value(std::vector<uint8_t>(1001, 0x5a))})};
    std::vector<uint8_t> bigger = ipc::encodeBatch(over);
    EXPECT_FALSE(ring.tryPush(bigger.data(), bigger.size()));
}

TEST(CodecEdge, BatchOfOneMatchesStandaloneMessage)
{
    ipc::Message msg = makeRequest(
        42, {ipc::Value(uint64_t{9}), ipc::Value(std::string("x")),
             ipc::Value(ipc::ObjectRef{2, 77})});
    ipc::Message lone = ipc::decodeMessage(ipc::encodeMessage(msg));
    std::vector<ipc::Message> batched =
        ipc::decodeBatch(ipc::encodeBatch({msg}));
    ASSERT_EQ(batched.size(), 1u);
    const ipc::Message &b = batched[0];
    EXPECT_EQ(b.kind, lone.kind);
    EXPECT_EQ(b.seq, lone.seq);
    EXPECT_EQ(b.apiId, lone.apiId);
    ASSERT_EQ(b.values.size(), lone.values.size());
    EXPECT_EQ(b.values[0].asU64(), lone.values[0].asU64());
    EXPECT_EQ(b.values[1].asStr(), lone.values[1].asStr());
    EXPECT_EQ(b.values[2].asRef(), lone.values[2].asRef());
    // Identical bodies: a batch of one only adds the count word and
    // swaps the per-message trailer for the shared one.
    EXPECT_EQ(ipc::batchWireSize({msg}),
              sizeof(uint32_t) + sizeof(uint32_t) +
                  ipc::messageBodySize(msg) + sizeof(uint64_t));
}

TEST(CodecEdge, CorruptedBatchTrailerRejectsTheWholeFrame)
{
    std::vector<ipc::Message> batch = {
        makeRequest(1, {ipc::Value(uint64_t{1})}),
        makeRequest(2, {ipc::Value(uint64_t{2})}),
    };
    std::vector<uint8_t> wire = ipc::encodeBatch(batch);
    // Flip one bit in the shared trailer.
    std::vector<uint8_t> bad = wire;
    bad.back() ^= 0x01;
    EXPECT_THROW(ipc::decodeBatch(bad), std::exception);
    // Flip one bit in the FIRST message's body: the second, intact
    // message is still rejected — the frame is one checksum unit.
    bad = wire;
    bad[sizeof(uint32_t) + sizeof(uint32_t)] ^= 0x80;
    EXPECT_THROW(ipc::decodeBatch(bad), std::exception);
    EXPECT_NO_THROW(ipc::decodeBatch(wire));
}

TEST(CodecEdge, CorruptFaultSurfacesAsTypedChannelLoss)
{
    osim::Kernel kernel;
    osim::FaultInjector injector(11);
    kernel.setFaultInjector(&injector);
    osim::Process &host = kernel.spawn("host");
    osim::Process &agent = kernel.spawn("agent");
    ipc::Channel channel(kernel, "ch:corrupt", host.pid(),
                         agent.pid());

    ipc::Message request = makeRequest(1, {ipc::Value(uint64_t{5})});
    channel.sendRequest(request);

    osim::FaultSpec spec;
    spec.point = osim::FaultPoint::RingTransfer;
    spec.action = osim::FaultAction::Corrupt;
    spec.pid = agent.pid();
    injector.schedule(spec);

    // The corrupted frame is not delivered as garbage — the shared
    // trailer rejects it and the receive reports "nothing arrived",
    // typed as a corruption loss for the at-least-once layer.
    ipc::Message received;
    EXPECT_FALSE(channel.receiveRequest(received));
    EXPECT_EQ(channel.stats().corrupted, 1u);
    EXPECT_EQ(channel.stats().dropped, 0u);

    // A clean retry of the same frame goes through.
    channel.sendRequest(request);
    EXPECT_TRUE(channel.receiveRequest(received));
    EXPECT_EQ(received.seq, 1u);
}

// ---- Dirty-epoch incremental checkpoints -----------------------------

struct HotPathEnv {
    HotPathEnv() : registry(fw::buildFullRegistry())
    {
        analysis::HybridCategorizer categorizer(registry);
        cats = categorizer.categorizeAll();
    }

    std::unique_ptr<core::FreePartRuntime>
    makeRuntime(core::RuntimeConfig config = {})
    {
        kernel = std::make_unique<osim::Kernel>();
        fw::seedFixtureFiles(*kernel);
        return std::make_unique<core::FreePartRuntime>(
            *kernel, registry, cats,
            core::PartitionPlan::freePartDefault(), config);
    }

    fw::ApiRegistry registry;
    analysis::Categorization cats;
    std::unique_ptr<osim::Kernel> kernel;
};

HotPathEnv &
env()
{
    static HotPathEnv instance;
    return instance;
}

/** Load a model and train it `rounds` times; every call checkpoints
 *  (interval 1), so most generations see one dirty object among the
 *  accumulated clean ones. Returns the weights ref. */
ipc::ObjectRef
trainRounds(core::FreePartRuntime &runtime, int rounds)
{
    core::ApiResult model = runtime.invoke(
        "torch.load", {ipc::Value(std::string("/data/model.fpt"))});
    EXPECT_TRUE(model.ok) << model.error;
    ipc::ObjectRef weights = model.values[0].asRef();
    core::ApiResult data = runtime.invoke(
        "torch.load", {ipc::Value(std::string("/data/model.fpt"))});
    for (int i = 0; i < rounds; ++i) {
        core::ApiResult trained = runtime.invoke(
            "tf.estimator.DNNClassifier.train",
            {ipc::Value(weights), data.values[0]});
        EXPECT_TRUE(trained.ok) << trained.error;
    }
    return weights;
}

TEST(DirtyEpoch, IncrementalCheckpointsSaveFewerBytes)
{
    // Each runtime borrows env().kernel, so the first one must be
    // fully measured and destroyed before the second is built.
    core::RunStats full_stats;
    {
        core::RuntimeConfig full;
        full.checkpointInterval = 1;
        full.checkpointFullEvery = 1; // every generation is full
        auto full_rt = env().makeRuntime(full);
        trainRounds(*full_rt, 8);
        full_stats = full_rt->stats();
    }
    EXPECT_EQ(full_stats.incrementalCheckpoints, 0u);
    EXPECT_GT(full_stats.fullCheckpoints, 0u);

    core::RuntimeConfig inc;
    inc.checkpointInterval = 1;
    inc.checkpointFullEvery = 4; // dirty-epoch deltas in between
    auto inc_rt = env().makeRuntime(inc);
    trainRounds(*inc_rt, 8);
    const core::RunStats &inc_stats = inc_rt->stats();
    EXPECT_GT(inc_stats.incrementalCheckpoints, 0u);
    EXPECT_GT(inc_stats.fullCheckpoints, 0u);

    // Same workload, same generations taken — the dirty-epoch deltas
    // must be strictly cheaper than always serializing the store.
    EXPECT_EQ(inc_stats.checkpointsTaken, full_stats.checkpointsTaken);
    EXPECT_LT(inc_stats.checkpointBytesSaved,
              full_stats.checkpointBytesSaved);
}

TEST(DirtyEpoch, IncrementalRestoreMatchesPreCrashState)
{
    core::RuntimeConfig config;
    config.checkpointInterval = 1;
    config.checkpointFullEvery = 4;
    auto runtime = env().makeRuntime(config);
    // 5 training rounds: the last generation before the crash is an
    // incremental one sitting on top of a full base.
    ipc::ObjectRef weights = trainRounds(*runtime, 5);
    ASSERT_GT(runtime->stats().incrementalCheckpoints, 0u);

    uint32_t p = runtime->homeOf(weights.objectId);
    runtime->fetchToHost(weights);
    std::vector<uint8_t> before =
        runtime->hostStore().serialize(weights.objectId);

    env().kernel->faultProcess(
        env().kernel->process(runtime->agentPid(p)), "induced");
    ASSERT_TRUE(runtime->restartAgent(p));
    ASSERT_TRUE(runtime->storeOf(p).has(weights.objectId));
    EXPECT_EQ(runtime->storeOf(p).serialize(weights.objectId),
              before);
    EXPECT_GT(runtime->stats().checkpointBytesRestored, 0u);
}

// ---- Bounded LRU dedup cache -----------------------------------------

TEST(DedupLru, EvictsLeastRecentlyUsedAndTouchOnFindProtects)
{
    core::DedupCache cache(2);
    cache.insert(1, {ipc::Value(uint64_t{10})});
    cache.insert(2, {ipc::Value(uint64_t{20})});
    // Touch 1 so 2 becomes the LRU entry.
    ASSERT_NE(cache.find(1), nullptr);
    EXPECT_EQ(cache.insert(3, {ipc::Value(uint64_t{30})}), 1u);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.find(2), nullptr); // evicted
    ASSERT_NE(cache.find(1), nullptr); // protected by the touch
    EXPECT_EQ((*cache.find(1))[0].asU64(), 10u);
    ASSERT_NE(cache.find(3), nullptr);

    // Refreshing an existing seq evicts nothing.
    EXPECT_EQ(cache.insert(1, {ipc::Value(uint64_t{11})}), 0u);
    EXPECT_EQ((*cache.find(1))[0].asU64(), 11u);

    // Shrinking the cap reports how many fell off the tail.
    EXPECT_EQ(cache.setCapacity(1), 1u);
    EXPECT_EQ(cache.size(), 1u);
    ASSERT_NE(cache.find(1), nullptr); // MRU survives
}

TEST(DedupLru, RuntimeCountsEvictionsUnderTightCap)
{
    core::RuntimeConfig config;
    config.dedupCacheEntries = 2;
    auto runtime = env().makeRuntime(config);
    // More distinct calls on one partition than the cache holds.
    for (int i = 0; i < 6; ++i) {
        uint64_t id = runtime->createHostMat(
            4, 4, 1, static_cast<uint64_t>(i), "m");
        core::ApiResult res = runtime->invoke(
            "cv2.GaussianBlur",
            {ipc::Value(ipc::ObjectRef{core::kHostPartition, id})});
        ASSERT_TRUE(res.ok) << res.error;
    }
    EXPECT_GT(runtime->stats().dedupEvictions, 0u);
    EXPECT_LE(runtime->seqCacheSize(1), 2u);
}

} // namespace
} // namespace freepart
