/**
 * @file
 * Registry integrity tests plus a parameterized sweep: every
 * implemented API must be invokable standalone with synthesized
 * fixture arguments (the property the dynamic tracer relies on).
 */

#include <gtest/gtest.h>

#include "fw/api_registry.hh"
#include "fw/invoker.hh"
#include "osim/kernel.hh"

namespace freepart::fw {
namespace {

const ApiRegistry &
registry()
{
    static ApiRegistry reg = buildFullRegistry();
    return reg;
}

TEST(Registry, HasSubstantialApiSurface)
{
    EXPECT_GE(registry().size(), 60u);
}

TEST(Registry, LookupByNameAndId)
{
    const ApiDescriptor &imread = registry().require("cv2.imread");
    EXPECT_EQ(imread.declaredType, ApiType::Loading);
    EXPECT_EQ(&registry().byId(imread.id), &imread);
    EXPECT_EQ(registry().byName("cv2.noSuchApi"), nullptr);
    EXPECT_ANY_THROW(registry().require("cv2.noSuchApi"));
}

TEST(Registry, DuplicateNameRejected)
{
    ApiRegistry reg;
    ApiDescriptor api;
    api.name = "x";
    reg.add(api);
    ApiDescriptor dup;
    dup.name = "x";
    EXPECT_ANY_THROW(reg.add(dup));
}

TEST(Registry, AllFourTypesPresent)
{
    size_t counts[4] = {};
    for (const ApiDescriptor &api : registry().all())
        if (api.declaredType != ApiType::Neutral &&
            api.declaredType != ApiType::Unknown)
            ++counts[static_cast<size_t>(api.declaredType)];
    EXPECT_GT(counts[0], 5u);  // loading
    EXPECT_GT(counts[1], 20u); // processing
    EXPECT_GT(counts[2], 5u);  // visualizing
    EXPECT_GT(counts[3], 5u);  // storing
}

TEST(Registry, EveryApiHasIrAndSyscalls)
{
    for (const ApiDescriptor &api : registry().all()) {
        EXPECT_FALSE(api.ir.empty()) << api.name;
        EXPECT_FALSE(api.syscalls.empty()) << api.name;
    }
}

TEST(Registry, DeclaredIrClassifiesToDeclaredType)
{
    // The ground-truth IR must be consistent with the ground-truth
    // type, except get_file whose IR needs the file-copy reduction.
    for (const ApiDescriptor &api : registry().all()) {
        if (api.name == "tf.keras.utils.get_file")
            continue;
        EXPECT_EQ(classifyFlowOps(api.ir), api.declaredType)
            << api.name;
    }
}

TEST(Registry, VulnerableApisCoverTable5Cves)
{
    std::set<std::string> cves;
    for (const ApiDescriptor *api : registry().vulnerable())
        for (const std::string &cve : api->cves)
            cves.insert(cve);
    for (const char *expected :
         {"CVE-2017-12604", "CVE-2017-12605", "CVE-2017-12606",
          "CVE-2017-12597", "CVE-2017-17760", "CVE-2019-5063",
          "CVE-2019-5064", "CVE-2017-14136", "CVE-2018-5269",
          "CVE-2019-14491", "CVE-2019-14492", "CVE-2019-14493",
          "CVE-2021-29513", "CVE-2021-29618", "CVE-2021-37661",
          "CVE-2021-41198"})
        EXPECT_TRUE(cves.count(expected)) << expected;
}

TEST(Registry, FrameworkFilters)
{
    EXPECT_GE(registry().byFramework(Framework::OpenCV).size(), 30u);
    EXPECT_GE(registry().byFramework(Framework::PyTorch).size(), 10u);
    EXPECT_GE(registry().byFramework(Framework::TensorFlow).size(),
              8u);
    EXPECT_GE(registry().byFramework(Framework::Caffe).size(), 5u);
}

TEST(Registry, TypeNeutralApisMarked)
{
    EXPECT_TRUE(registry().require("cv2.cvtColor").typeNeutral);
    EXPECT_TRUE(
        registry().require("cv2.createMemStorage").typeNeutral);
    EXPECT_FALSE(registry().require("cv2.GaussianBlur").typeNeutral);
}

TEST(Registry, StatefulApisMarked)
{
    EXPECT_TRUE(registry().require("caffe.Net.Backward").stateful);
    EXPECT_TRUE(registry()
                    .require("tf.estimator.DNNClassifier.train")
                    .stateful);
    EXPECT_FALSE(registry().require("cv2.GaussianBlur").stateful);
}

/**
 * Parameterized sweep: every implemented API executes successfully
 * in a scratch process with invoker-synthesized arguments.
 */
class ApiInvocation : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ApiInvocation, ExecutesWithFixtureArgs)
{
    const ApiDescriptor &api = registry().require(GetParam());
    ASSERT_TRUE(api.implemented());

    osim::Kernel kernel;
    osim::Process &proc = kernel.spawn("sweep");
    seedFixtureFiles(kernel);
    uint64_t counter = 0;
    ObjectStore store(kernel, proc.pid(), &counter);
    DeviceFds devices;
    Invoker invoker(kernel, store, 0);

    ExecContext ctx(kernel, proc, store, devices, 0);
    ipc::ValueList args = invoker.prepareArgs(api, 1);
    ipc::ValueList results;
    ASSERT_NO_THROW(results = api.fn(ctx, api, args)) << api.name;

    // Any returned refs must resolve in the local store.
    for (const ipc::Value &value : results) {
        if (value.kind() == ipc::Value::Kind::Ref) {
            EXPECT_TRUE(store.has(value.asRef().objectId));
        }
    }

    // The process must have survived a benign invocation.
    EXPECT_TRUE(proc.alive()) << api.name;
}

std::vector<std::string>
allApiNames()
{
    std::vector<std::string> names;
    for (const ApiDescriptor &api : registry().all())
        if (api.implemented())
            names.push_back(api.name);
    return names;
}

std::string
paramName(const ::testing::TestParamInfo<std::string> &info)
{
    std::string name = info.param;
    for (char &c : name)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return name;
}

INSTANTIATE_TEST_SUITE_P(AllApis, ApiInvocation,
                         ::testing::ValuesIn(allApiNames()),
                         paramName);

/**
 * Parameterized property: benign invocations never trip declared
 * syscall profiles — every syscall an API issues is in its profile.
 */
class SyscallProfile : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SyscallProfile, ObservedSyscallsWithinDeclaredProfile)
{
    const ApiDescriptor &api = registry().require(GetParam());
    osim::Kernel kernel;
    osim::Process &proc = kernel.spawn("profile");
    seedFixtureFiles(kernel);
    uint64_t counter = 0;
    ObjectStore store(kernel, proc.pid(), &counter);
    DeviceFds devices;
    Invoker invoker(kernel, store, 0);
    ExecContext ctx(kernel, proc, store, devices, 0);
    ipc::ValueList args = invoker.prepareArgs(api, 1);
    ASSERT_NO_THROW(api.fn(ctx, api, args));
    for (size_t i = 0; i < osim::kNumSyscalls; ++i) {
        if (proc.syscallCounts[i] == 0)
            continue;
        auto call = static_cast<osim::Syscall>(i);
        EXPECT_TRUE(api.syscalls.count(call))
            << api.name << " issued undeclared syscall "
            << osim::syscallName(call);
    }
}

INSTANTIATE_TEST_SUITE_P(AllApis, SyscallProfile,
                         ::testing::ValuesIn(allApiNames()),
                         paramName);

} // namespace
} // namespace freepart::fw
