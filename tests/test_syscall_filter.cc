/**
 * @file
 * Unit tests for the seccomp-style SyscallFilter: allowlists,
 * fd-argument restrictions, and NO_NEW_PRIVS locking semantics.
 */

#include <gtest/gtest.h>

#include "osim/syscall_filter.hh"

namespace freepart::osim {
namespace {

TEST(SyscallFilter, PermissiveByDefault)
{
    SyscallFilter filter;
    EXPECT_FALSE(filter.installed());
    for (Syscall call : allSyscalls())
        EXPECT_TRUE(filter.permits(call));
    EXPECT_EQ(filter.allowedCount(), kNumSyscalls);
}

TEST(SyscallFilter, InstallDeniesEverythingElse)
{
    SyscallFilter filter;
    filter.install({Syscall::Read, Syscall::Openat});
    EXPECT_TRUE(filter.permits(Syscall::Read));
    EXPECT_TRUE(filter.permits(Syscall::Openat));
    EXPECT_FALSE(filter.permits(Syscall::Send));
    EXPECT_FALSE(filter.permits(Syscall::Mprotect));
    EXPECT_EQ(filter.allowedCount(), 2u);
}

TEST(SyscallFilter, AllowAndDenyAdjustList)
{
    SyscallFilter filter;
    filter.install({Syscall::Read});
    filter.allow(Syscall::Write);
    EXPECT_TRUE(filter.permits(Syscall::Write));
    filter.deny(Syscall::Read);
    EXPECT_FALSE(filter.permits(Syscall::Read));
}

TEST(SyscallFilter, LockPreventsRelaxing)
{
    SyscallFilter filter;
    filter.install({Syscall::Read});
    filter.lock();
    EXPECT_TRUE(filter.locked());
    EXPECT_THROW(filter.allow(Syscall::Send), SyscallViolation);
    EXPECT_THROW(filter.install({Syscall::Send}), SyscallViolation);
}

TEST(SyscallFilter, LockStillAllowsTightening)
{
    SyscallFilter filter;
    filter.install({Syscall::Read, Syscall::Mprotect});
    filter.lock();
    EXPECT_NO_THROW(filter.deny(Syscall::Mprotect));
    EXPECT_FALSE(filter.permits(Syscall::Mprotect));
    EXPECT_TRUE(filter.permits(Syscall::Read));
}

TEST(SyscallFilter, FdRestrictionOnlyForFdSensitiveSyscalls)
{
    SyscallFilter filter;
    EXPECT_NO_THROW(filter.restrictFds(Syscall::Ioctl, {3}));
    EXPECT_ANY_THROW(filter.restrictFds(Syscall::Read, {3}));
}

TEST(SyscallFilter, FdRestrictionEnforced)
{
    SyscallFilter filter;
    filter.install({Syscall::Ioctl, Syscall::Connect});
    filter.restrictFds(Syscall::Ioctl, {4, 5});
    EXPECT_TRUE(filter.permitsFd(Syscall::Ioctl, 4));
    EXPECT_TRUE(filter.permitsFd(Syscall::Ioctl, 5));
    EXPECT_FALSE(filter.permitsFd(Syscall::Ioctl, 7));
    // Connect has no fd restriction registered: any fd passes.
    EXPECT_TRUE(filter.permitsFd(Syscall::Connect, 99));
}

TEST(SyscallFilter, EmptyFdSetDeniesAllFds)
{
    SyscallFilter filter;
    filter.install({Syscall::Select});
    filter.restrictFds(Syscall::Select, {});
    EXPECT_FALSE(filter.permitsFd(Syscall::Select, 3));
}

TEST(SyscallFilter, DeniedSyscallFailsFdCheckToo)
{
    SyscallFilter filter;
    filter.install({Syscall::Read});
    EXPECT_FALSE(filter.permitsFd(Syscall::Ioctl, 3));
}

TEST(SyscallFilter, AllowedNamesSorted)
{
    SyscallFilter filter;
    filter.install({Syscall::Write, Syscall::Brk});
    auto names = filter.allowedNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "brk");
    EXPECT_EQ(names[1], "write");
}

TEST(Syscalls, NameRoundTrip)
{
    for (Syscall call : allSyscalls())
        EXPECT_EQ(syscallFromName(syscallName(call)), call);
}

TEST(Syscalls, InitOnlyAndFdSensitiveSets)
{
    EXPECT_TRUE(isInitOnlySyscall(Syscall::Mprotect));
    EXPECT_TRUE(isInitOnlySyscall(Syscall::Connect));
    EXPECT_FALSE(isInitOnlySyscall(Syscall::Read));
    EXPECT_TRUE(needsFdRestriction(Syscall::Ioctl));
    EXPECT_TRUE(needsFdRestriction(Syscall::Select));
    EXPECT_TRUE(needsFdRestriction(Syscall::Fcntl));
    EXPECT_TRUE(needsFdRestriction(Syscall::Connect));
    EXPECT_FALSE(needsFdRestriction(Syscall::Openat));
}

} // namespace
} // namespace freepart::osim
