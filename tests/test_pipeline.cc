/**
 * @file
 * Pipeline-parallel execution tests: per-agent virtual timelines,
 * async invoke with object-dependency scheduling, bounded in-flight
 * queues, and the protection-flip barrier. The invariants under test:
 * async replays are byte-identical to sync ones and deterministic,
 * overlap only ever shrinks the makespan, and with the gate off the
 * runtime keeps the classic serialized accounting bit-for-bit.
 */

#include <gtest/gtest.h>

#include "apps/app_models.hh"
#include "apps/workload.hh"
#include "core/runtime.hh"
#include "util/logging.hh"

namespace freepart::core {
namespace {

struct PipeEnv {
    PipeEnv() : registry(fw::buildFullRegistry())
    {
        analysis::HybridCategorizer categorizer(registry);
        cats = categorizer.categorizeAll();
    }

    std::unique_ptr<FreePartRuntime>
    makeRuntime(RuntimeConfig config = {})
    {
        kernel = std::make_unique<osim::Kernel>();
        fw::seedFixtureFiles(*kernel);
        return std::make_unique<FreePartRuntime>(
            *kernel, registry, cats, PartitionPlan::freePartDefault(),
            config);
    }

    /** Replay one Table 6 app against a fresh runtime. */
    apps::WorkloadResult
    replayApp(size_t model_index, bool pipeline_gate, bool async)
    {
        apps::WorkloadGenerator::Config wconfig;
        wconfig.imageRows = 64;
        wconfig.imageCols = 64;
        wconfig.tensorDim = 16;
        wconfig.maxRounds = 3;
        wconfig.maxCallsPerRound = 2;
        apps::WorkloadGenerator generator(registry, wconfig);
        kernel = std::make_unique<osim::Kernel>();
        generator.seedInputs(*kernel);
        RuntimeConfig config;
        config.pipelineParallel = pipeline_gate;
        FreePartRuntime runtime(*kernel, registry, cats,
                                PartitionPlan::freePartDefault(),
                                config);
        const apps::AppModel &model =
            apps::appModels().at(model_index);
        return async ? generator.runAsync(runtime, model)
                     : generator.run(runtime, model);
    }

    fw::ApiRegistry registry;
    analysis::Categorization cats;
    std::unique_ptr<osim::Kernel> kernel;
};

PipeEnv &
env()
{
    static PipeEnv instance;
    return instance;
}

ipc::Value
imreadArg()
{
    return ipc::Value(std::string("/data/test.fpim"));
}

TEST(Pipeline, AsyncReplayIsByteIdenticalAndFaster)
{
    // FaceTracker: a multi-round load->process->visualize/store app.
    apps::WorkloadResult sync = env().replayApp(1, false, false);
    apps::WorkloadResult async = env().replayApp(1, true, true);
    ASSERT_EQ(sync.callsFailed, 0u);
    ASSERT_EQ(async.callsFailed, 0u);
    ASSERT_TRUE(sync.hasFinalObject);
    ASSERT_TRUE(async.hasFinalObject);
    EXPECT_EQ(sync.finalDigest, async.finalDigest);
    EXPECT_LT(async.stats.elapsed(), sync.stats.elapsed());
    EXPECT_GT(async.stats.asyncCalls, 0u);
    EXPECT_GT(async.stats.overlapFraction(), 0.0);
    EXPECT_GT(async.stats.totalBusyTime(), 0u);
}

TEST(Pipeline, AsyncReplayIsDeterministic)
{
    apps::WorkloadResult a = env().replayApp(1, true, true);
    apps::WorkloadResult b = env().replayApp(1, true, true);
    EXPECT_EQ(a.finalDigest, b.finalDigest);
    EXPECT_EQ(a.stats.elapsed(), b.stats.elapsed());
    EXPECT_EQ(a.stats.asyncCalls, b.stats.asyncCalls);
    EXPECT_EQ(a.stats.ipcMessages, b.stats.ipcMessages);
}

TEST(Pipeline, GateOffKeepsSerializedAccounting)
{
    // Async call sites must degrade to the classic sync path when the
    // gate is off: same makespan, same contents, no async counters —
    // the Table 9 baselines depend on this invariance.
    apps::WorkloadResult sync = env().replayApp(2, false, false);
    apps::WorkloadResult async_off = env().replayApp(2, false, true);
    EXPECT_EQ(sync.finalDigest, async_off.finalDigest);
    EXPECT_EQ(sync.stats.elapsed(), async_off.stats.elapsed());
    EXPECT_EQ(async_off.stats.asyncCalls, 0u);
    EXPECT_EQ(async_off.stats.pipelineBarriers, 0u);
}

TEST(Pipeline, WaitAndPeekTicketSemantics)
{
    RuntimeConfig config;
    config.pipelineParallel = true;
    auto runtime = env().makeRuntime(config);
    CallTicket ticket = runtime->invokeAsync("cv2.imread",
                                             {imreadArg()});
    ASSERT_EQ(runtime->pendingAsyncCalls(), 1u);
    const ApiResult *peeked = runtime->peekResult(ticket);
    ASSERT_NE(peeked, nullptr);
    EXPECT_TRUE(peeked->ok) << peeked->error;

    ApiResult waited = runtime->wait(ticket);
    EXPECT_TRUE(waited.ok) << waited.error;
    EXPECT_EQ(runtime->pendingAsyncCalls(), 0u);
    EXPECT_EQ(runtime->peekResult(ticket), nullptr);

    // A ticket is single-use: waiting again is an explicit error.
    ApiResult again = runtime->wait(ticket);
    EXPECT_FALSE(again.ok);
    EXPECT_NE(again.error.find("ticket"), std::string::npos);
}

TEST(Pipeline, GateOffAsyncCompletesImmediately)
{
    auto runtime = env().makeRuntime();
    CallTicket ticket = runtime->invokeAsync("cv2.imread",
                                             {imreadArg()});
    const ApiResult *peeked = runtime->peekResult(ticket);
    ASSERT_NE(peeked, nullptr);
    EXPECT_TRUE(peeked->ok) << peeked->error;
    EXPECT_TRUE(runtime->wait(ticket).ok);
}

TEST(Pipeline, InFlightDepthIsBoundedAndStallsAreCounted)
{
    RuntimeConfig config;
    config.pipelineParallel = true;
    config.maxInFlightPerPartition = 2;
    auto runtime = env().makeRuntime(config);
    // Independent loads pile onto the loading agent's timeline while
    // the host clock stays nearly still: the queue must cap at the
    // configured depth and charge stall time instead of growing.
    std::vector<CallTicket> tickets;
    for (int i = 0; i < 8; ++i)
        tickets.push_back(
            runtime->invokeAsync("cv2.imread", {imreadArg()}));
    for (const CallTicket &ticket : tickets) {
        const ApiResult *res = runtime->peekResult(ticket);
        ASSERT_NE(res, nullptr);
        EXPECT_TRUE(res->ok) << res->error;
    }
    const RunStats &stats = runtime->stats();
    EXPECT_LE(stats.inFlightPeak, 2u);
    EXPECT_GT(stats.inFlightStalls, 0u);
    runtime->drainAll();
    EXPECT_EQ(runtime->pendingAsyncCalls(), 0u);
}

TEST(Pipeline, ProtectionFlipActsAsBarrier)
{
    RuntimeConfig config;
    config.pipelineParallel = true;
    auto runtime = env().makeRuntime(config);
    ApiResult img = runtime->invoke("cv2.imread", {imreadArg()});
    ASSERT_TRUE(img.ok) << img.error;
    uint64_t before = runtime->stats().pipelineBarriers;
    // An unprotected variable inside the processing agent, defined in
    // the Loading state: the next state transition must mprotect it,
    // and under overlap that flip requires draining the timelines.
    runtime->allocInPartition(1, "agent-scratch", 64);
    ApiResult blur =
        runtime->invoke("cv2.GaussianBlur", {img.values[0]});
    ASSERT_TRUE(blur.ok) << blur.error;
    EXPECT_GT(runtime->stats().pipelineBarriers, before);
}

TEST(Pipeline, DrainAllSettlesTimelines)
{
    RuntimeConfig config;
    config.pipelineParallel = true;
    auto runtime = env().makeRuntime(config);
    for (int i = 0; i < 3; ++i)
        runtime->invokeAsync("cv2.imread", {imreadArg()});
    EXPECT_EQ(runtime->pendingAsyncCalls(), 3u);
    osim::SimTime horizon = env().kernel->maxTimeline();
    runtime->drainAll();
    EXPECT_EQ(runtime->pendingAsyncCalls(), 0u);
    EXPECT_GE(env().kernel->now(), horizon);
    // Post-drain, the global clock covers every per-process timeline.
    EXPECT_EQ(env().kernel->now(), env().kernel->maxTimeline());
}

TEST(Pipeline, StatsOverlapFractionBounds)
{
    RunStats stats;
    EXPECT_EQ(stats.overlapFraction(), 0.0);
    stats.partitionBusyTime = {600, 600};
    stats.criticalPathMakespan = 800;
    // busy 1200 over a 800 span: 1/3 of busy time ran concurrently.
    EXPECT_NEAR(stats.overlapFraction(), 1.0 / 3.0, 1e-9);
    stats.criticalPathMakespan = 1500; // span exceeds busy: no overlap
    EXPECT_EQ(stats.overlapFraction(), 0.0);
}

} // namespace
} // namespace freepart::core
