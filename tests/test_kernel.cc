/**
 * @file
 * Unit tests for the simulated kernel: process lifecycle, the VFS
 * syscall surface, devices, shared memory, syscall filtering with
 * SIGSYS crashes, the event log, and the cost-model clock.
 */

#include <gtest/gtest.h>

#include "osim/kernel.hh"
#include "util/logging.hh"

namespace freepart::osim {
namespace {

TEST(Kernel, SpawnAssignsUniquePidsAndLogsEvents)
{
    Kernel kernel;
    Process &a = kernel.spawn("a");
    Process &b = kernel.spawn("b");
    EXPECT_NE(a.pid(), b.pid());
    EXPECT_TRUE(a.alive());
    EXPECT_EQ(kernel.countEvents(EventKind::ProcSpawn), 2u);
    EXPECT_EQ(kernel.livePids().size(), 2u);
}

TEST(Kernel, SpawnAdvancesClock)
{
    Kernel kernel;
    SimTime t0 = kernel.now();
    kernel.spawn("p");
    EXPECT_GT(kernel.now(), t0);
}

TEST(Kernel, FileWriteThenReadRoundTrips)
{
    Kernel kernel;
    Process &proc = kernel.spawn("p");
    // Write a file.
    Fd wfd = kernel.sysOpen(proc, "/f.bin", true);
    Addr src = proc.space().alloc(16);
    uint64_t magic = 0x1122334455667788ull;
    proc.space().writeValue(src, magic);
    kernel.sysWrite(proc, wfd, src, 8);
    kernel.sysClose(proc, wfd);
    // Read it back.
    Fd rfd = kernel.sysOpen(proc, "/f.bin", false);
    EXPECT_EQ(kernel.sysFstat(proc, rfd), 8u);
    Addr dst = proc.space().alloc(16);
    EXPECT_EQ(kernel.sysRead(proc, rfd, dst, 8), 8u);
    kernel.sysClose(proc, rfd);
    EXPECT_EQ(proc.space().readValue<uint64_t>(dst), magic);
}

TEST(Kernel, OpenMissingFileCrashesWithEnoent)
{
    Kernel kernel;
    Process &proc = kernel.spawn("p");
    EXPECT_THROW(kernel.sysOpen(proc, "/nope", false), ProcessCrash);
}

TEST(Kernel, ReadPastEofReturnsZero)
{
    Kernel kernel;
    kernel.vfs().putFile("/small", {1, 2, 3});
    Process &proc = kernel.spawn("p");
    Fd fd = kernel.sysOpen(proc, "/small", false);
    Addr dst = proc.space().alloc(16);
    EXPECT_EQ(kernel.sysRead(proc, fd, dst, 16), 3u);
    EXPECT_EQ(kernel.sysRead(proc, fd, dst, 16), 0u);
}

TEST(Kernel, LseekMovesCursor)
{
    Kernel kernel;
    kernel.vfs().putFile("/f", {10, 20, 30, 40});
    Process &proc = kernel.spawn("p");
    Fd fd = kernel.sysOpen(proc, "/f", false);
    kernel.sysLseek(proc, fd, 2);
    Addr dst = proc.space().alloc(4);
    EXPECT_EQ(kernel.sysRead(proc, fd, dst, 4), 2u);
    EXPECT_EQ(proc.space().readValue<uint8_t>(dst), 30);
}

TEST(Kernel, CameraReadProducesDeterministicFrames)
{
    Kernel k1, k2;
    Process &p1 = k1.spawn("a");
    Process &p2 = k2.spawn("b");
    Fd f1 = k1.sysOpen(p1, "/dev/camera0", false);
    Fd f2 = k2.sysOpen(p2, "/dev/camera0", false);
    size_t len = k1.camera().frameBytes();
    Addr d1 = p1.space().alloc(len);
    Addr d2 = p2.space().alloc(len);
    EXPECT_EQ(k1.sysRead(p1, f1, d1, len), len);
    EXPECT_EQ(k2.sysRead(p2, f2, d2, len), len);
    std::vector<uint8_t> b1(len), b2(len);
    p1.space().read(d1, b1.data(), len);
    p2.space().read(d2, b2.data(), len);
    EXPECT_EQ(b1, b2);
    EXPECT_EQ(k1.camera().framesCaptured(), 1u);
}

TEST(Kernel, GuiShowRecordsEventAndChecksum)
{
    Kernel kernel;
    Process &proc = kernel.spawn("p");
    Fd sock = kernel.sysSocket(proc);
    kernel.sysConnect(proc, sock, "gui");
    Addr pixels = proc.space().alloc(64);
    kernel.guiShow(proc, sock, "win", 8, 8, pixels, 64);
    ASSERT_EQ(kernel.display().events().size(), 1u);
    EXPECT_EQ(kernel.display().events()[0].window, "win");
    EXPECT_EQ(kernel.countEvents(EventKind::GuiShow), 1u);
}

TEST(Kernel, NetworkSendRecordsPayload)
{
    Kernel kernel;
    Process &proc = kernel.spawn("p");
    Fd sock = kernel.sysSocket(proc);
    kernel.sysConnect(proc, sock, "evil.example");
    Addr src = proc.space().alloc(32);
    proc.space().writeValue<uint32_t>(src, 0x5ec2e7);
    kernel.sysSend(proc, sock, src, 32);
    ASSERT_EQ(kernel.network().sends().size(), 1u);
    EXPECT_EQ(kernel.network().sends()[0].dest, "evil.example");
    EXPECT_EQ(kernel.network().sends()[0].length, 32u);
    EXPECT_EQ(kernel.network().bytesSent(), 32u);
}

TEST(Kernel, SendOnUnconnectedSocketCrashes)
{
    Kernel kernel;
    Process &proc = kernel.spawn("p");
    Fd sock = kernel.sysSocket(proc);
    Addr src = proc.space().alloc(8);
    EXPECT_THROW(kernel.sysSend(proc, sock, src, 8), ProcessCrash);
}

TEST(Kernel, FilterDenialKillsProcessAndLogs)
{
    Kernel kernel;
    Process &proc = kernel.spawn("p");
    proc.filter().install({Syscall::Read});
    Addr a = proc.space().alloc(64);
    EXPECT_THROW(kernel.sysMprotect(proc, a, 64, PermRWX),
                 SyscallViolation);
    EXPECT_FALSE(proc.alive());
    EXPECT_EQ(proc.deniedSyscalls, 1u);
    EXPECT_EQ(kernel.countEvents(EventKind::SyscallDenied), 1u);
    EXPECT_NE(proc.crashReason().find("SIGSYS"), std::string::npos);
}

TEST(Kernel, FdRestrictedIoctlDenied)
{
    Kernel kernel;
    Process &proc = kernel.spawn("p");
    Fd cam = kernel.sysOpen(proc, "/dev/camera0", false);
    proc.filter().install({Syscall::Ioctl, Syscall::Openat});
    proc.filter().restrictFds(Syscall::Ioctl, {cam});
    EXPECT_NO_THROW(kernel.sysIoctl(proc, cam, kIoctlCaptureFrame));
    Process &proc2 = kernel.spawn("q");
    Fd cam2 = kernel.sysOpen(proc2, "/dev/camera0", false);
    Fd other = kernel.sysOpen(proc2, "/dev/camera1", false);
    proc2.filter().install({Syscall::Ioctl, Syscall::Openat});
    proc2.filter().restrictFds(Syscall::Ioctl, {cam2});
    EXPECT_THROW(kernel.sysIoctl(proc2, other, kIoctlCaptureFrame),
                 SyscallViolation);
}

TEST(Kernel, SyscallFromDeadProcessRefused)
{
    Kernel kernel;
    Process &proc = kernel.spawn("p");
    kernel.faultProcess(proc, "test crash");
    EXPECT_THROW(kernel.sysBrk(proc), ProcessCrash);
}

TEST(Kernel, RespawnResetsStateAndBumpsIncarnation)
{
    Kernel kernel;
    Process &proc = kernel.spawn("p");
    Addr a = proc.space().alloc(64);
    proc.filter().install({Syscall::Read});
    kernel.faultProcess(proc, "crash");
    Process &fresh = kernel.respawn(proc.pid());
    EXPECT_TRUE(fresh.alive());
    EXPECT_EQ(fresh.incarnation(), 1);
    EXPECT_FALSE(fresh.filter().installed());
    EXPECT_THROW(fresh.space().readValue<uint8_t>(a), MemFault);
    EXPECT_EQ(kernel.countEvents(EventKind::ProcRestart), 1u);
}

TEST(Kernel, TrustedProtectBlocksProcessWrites)
{
    Kernel kernel;
    Process &proc = kernel.spawn("p");
    Addr a = proc.space().alloc(128);
    kernel.trustedProtect(proc.pid(), a, 128, PermRead);
    EXPECT_THROW(proc.space().writeValue<uint8_t>(a, 1), MemFault);
    EXPECT_EQ(kernel.countEvents(EventKind::Protection), 1u);
}

TEST(Kernel, TrustedCopyMovesBytesAcrossProcesses)
{
    Kernel kernel;
    Process &a = kernel.spawn("a");
    Process &b = kernel.spawn("b");
    Addr src = a.space().alloc(64);
    Addr dst = b.space().alloc(64);
    a.space().writeValue<uint64_t>(src, 42);
    SimTime before = kernel.now();
    kernel.trustedCopy(a.pid(), src, b.pid(), dst, 64);
    EXPECT_EQ(b.space().readValue<uint64_t>(dst), 42u);
    EXPECT_GT(kernel.now(), before);
}

TEST(Kernel, TrustedCopyRespectsDestinationPermissions)
{
    Kernel kernel;
    Process &a = kernel.spawn("a");
    Process &b = kernel.spawn("b");
    Addr src = a.space().alloc(64);
    Addr dst = b.space().alloc(64);
    kernel.trustedProtect(b.pid(), dst, 64, PermRead);
    EXPECT_THROW(kernel.trustedCopy(a.pid(), src, b.pid(), dst, 64),
                 MemFault);
}

TEST(Kernel, ShmMapSharesBytesBetweenProcesses)
{
    Kernel kernel;
    Process &a = kernel.spawn("a");
    Process &b = kernel.spawn("b");
    uint32_t seg = kernel.shmCreate("ring", 8192);
    Addr ma = kernel.trustedShmMap(a.pid(), seg, PermRW);
    Addr mb = kernel.trustedShmMap(b.pid(), seg, PermRW);
    a.space().writeValue<uint32_t>(ma + 100, 777);
    EXPECT_EQ(b.space().readValue<uint32_t>(mb + 100), 777u);
}

TEST(Kernel, ShmOpenSyscallRequiresAllowlist)
{
    Kernel kernel;
    Process &proc = kernel.spawn("p");
    kernel.shmCreate("seg", 4096);
    proc.filter().install({Syscall::Read});
    EXPECT_THROW(kernel.sysShmOpen(proc, "seg", PermRW),
                 SyscallViolation);
}

TEST(Kernel, PrctlLocksFilter)
{
    Kernel kernel;
    Process &proc = kernel.spawn("p");
    proc.filter().install({Syscall::Prctl, Syscall::Read});
    kernel.sysPrctlNoNewPrivs(proc);
    EXPECT_TRUE(proc.filter().locked());
    EXPECT_THROW(proc.filter().allow(Syscall::Send),
                 SyscallViolation);
}

TEST(Kernel, ForkSpawnsChild)
{
    Kernel kernel;
    Process &proc = kernel.spawn("p");
    size_t before = kernel.processCount();
    Pid child = kernel.sysFork(proc);
    EXPECT_EQ(kernel.processCount(), before + 1);
    EXPECT_TRUE(kernel.process(child).alive());
}

TEST(Kernel, SyscallCountsAccumulate)
{
    Kernel kernel;
    Process &proc = kernel.spawn("p");
    kernel.sysBrk(proc);
    kernel.sysBrk(proc);
    kernel.sysMisc(proc, Syscall::Getpid);
    EXPECT_EQ(
        proc.syscallCounts[static_cast<size_t>(Syscall::Brk)], 2u);
    EXPECT_EQ(
        proc.syscallCounts[static_cast<size_t>(Syscall::Getpid)], 1u);
}

TEST(Kernel, GetrandomIsDeterministicPerKernel)
{
    Kernel k1, k2;
    Process &p1 = k1.spawn("a");
    Process &p2 = k2.spawn("b");
    EXPECT_EQ(k1.sysGetrandom(p1), k2.sysGetrandom(p2));
}

TEST(Kernel, ExitMarksProcessExited)
{
    Kernel kernel;
    Process &proc = kernel.spawn("p");
    kernel.sysExit(proc);
    EXPECT_EQ(proc.state(), ProcState::Exited);
    EXPECT_FALSE(proc.alive());
}

TEST(CostModel, CopyAndComputeScaleLinearly)
{
    CostModel costs;
    EXPECT_EQ(costs.copyCost(0), 0u);
    EXPECT_EQ(costs.copyCost(2000),
              2 * costs.copyCost(1000));
    EXPECT_EQ(costs.computeCost(2000),
              2 * costs.computeCost(1000));
}

TEST(Devices, KeyQueueFifo)
{
    DisplayDevice display;
    EXPECT_EQ(display.popKey(), -1);
    display.pushKey('s');
    display.pushKey('q');
    EXPECT_EQ(display.popKey(), 's');
    EXPECT_EQ(display.popKey(), 'q');
    EXPECT_EQ(display.popKey(), -1);
}

TEST(Devices, Fnv1aMatchesKnownVector)
{
    // FNV-1a 64 of empty input is the offset basis.
    EXPECT_EQ(fnv1a(nullptr, 0), 0xcbf29ce484222325ull);
    const uint8_t a[] = {'a'};
    EXPECT_EQ(fnv1a(a, 1), 0xaf63dc4c8601ec8cull);
}

// ---- Per-process virtual timelines ----------------------------------

TEST(Timelines, TaskBracketChargesTimelineNotGlobalClock)
{
    Kernel kernel;
    Process &proc = kernel.spawn("agent");
    SimTime t0 = kernel.now();

    kernel.beginTask(proc.pid(), t0);
    EXPECT_TRUE(kernel.taskActive());
    kernel.advance(500);
    // Inside the bracket, now() reads the task clock...
    EXPECT_EQ(kernel.now(), t0 + 500);
    SimTime done = kernel.endTask();
    // ...but the global clock never moved: the work happened on the
    // process's own timeline, concurrently with the issuer.
    EXPECT_EQ(done, t0 + 500);
    EXPECT_EQ(kernel.now(), t0);
    EXPECT_EQ(kernel.timelineOf(proc.pid()), t0 + 500);
    EXPECT_EQ(kernel.maxTimeline(), t0 + 500);
}

TEST(Timelines, TasksOnOneProcessSerializeViaReadyAt)
{
    Kernel kernel;
    Process &proc = kernel.spawn("agent");
    SimTime t0 = kernel.now();
    kernel.beginTask(proc.pid(), t0);
    kernel.advance(300);
    kernel.endTask();
    // A second task asked to start earlier must queue behind the
    // first: start_at below the ready point is advisory, the bracket
    // clamps to max(start_at, global clock) and readyAt accumulates.
    SimTime ready = kernel.timelineOf(proc.pid());
    kernel.beginTask(proc.pid(), ready);
    kernel.advance(200);
    EXPECT_EQ(kernel.endTask(), ready + 200);
    EXPECT_EQ(kernel.timelineOf(proc.pid()), t0 + 500);
}

TEST(Timelines, SyncToTimelinesIsABarrier)
{
    Kernel kernel;
    Process &a = kernel.spawn("a");
    Process &b = kernel.spawn("b");
    SimTime t0 = kernel.now();
    kernel.beginTask(a.pid(), t0);
    kernel.advance(1000);
    kernel.endTask();
    kernel.beginTask(b.pid(), t0);
    kernel.advance(400);
    kernel.endTask();
    EXPECT_EQ(kernel.now(), t0);
    kernel.syncToTimelines();
    EXPECT_EQ(kernel.now(), t0 + 1000);
    EXPECT_EQ(kernel.now(), kernel.maxTimeline());
}

TEST(Timelines, NestedTaskBracketPanics)
{
    Kernel kernel;
    Process &proc = kernel.spawn("p");
    kernel.beginTask(proc.pid(), kernel.now());
    EXPECT_THROW(kernel.beginTask(proc.pid(), kernel.now()),
                 util::PanicError);
    kernel.endTask();
    EXPECT_THROW(kernel.endTask(), util::PanicError);
}

} // namespace
} // namespace freepart::osim
