/**
 * @file
 * Tests for the hybrid analysis stack: the file-copy reduction rule,
 * static classification (including its deliberate blindness to
 * indirect flows), the dynamic tracer, coverage reporting, and the
 * end-to-end hybrid categorizer — whose output must match the
 * ground-truth type of EVERY registered API (the §5 correctness
 * claim: "all partitioned APIs were correctly categorized").
 */

#include <gtest/gtest.h>

#include "analysis/dynamic_tracer.hh"
#include "analysis/hybrid_categorizer.hh"
#include "analysis/static_analyzer.hh"

namespace freepart::analysis {
namespace {

using fw::ApiType;
using fw::FlowOp;
using fw::StorageKind;

const fw::ApiRegistry &
registry()
{
    static fw::ApiRegistry reg = fw::buildFullRegistry();
    return reg;
}

TEST(ReduceFileCopies, CollapsesSpillReloadPair)
{
    // The tf.keras.utils.get_file pattern (§4.2.1).
    std::vector<FlowOp> ops = {
        {StorageKind::Mem, StorageKind::Dev, false},
        {StorageKind::File, StorageKind::Mem, false},
        {StorageKind::Mem, StorageKind::File, false},
    };
    std::vector<FlowOp> reduced = reduceFileCopies(ops);
    ASSERT_EQ(reduced.size(), 2u);
    EXPECT_EQ(reduced[0],
              (FlowOp{StorageKind::Mem, StorageKind::Dev, false}));
    EXPECT_EQ(reduced[1],
              (FlowOp{StorageKind::Mem, StorageKind::Mem, false}));
    EXPECT_EQ(fw::classifyFlowOps(reduced), ApiType::Loading);
}

TEST(ReduceFileCopies, LeavesPureLoadersAndStorersAlone)
{
    std::vector<FlowOp> load = {
        {StorageKind::Mem, StorageKind::File, false}};
    EXPECT_EQ(reduceFileCopies(load), load);
    std::vector<FlowOp> store = {
        {StorageKind::File, StorageKind::Mem, false}};
    EXPECT_EQ(reduceFileCopies(store), store);
}

TEST(ReduceFileCopies, OnlyPairsAfterSpillCollapse)
{
    // Reload BEFORE spill is a real load + real store, not a copy.
    std::vector<FlowOp> ops = {
        {StorageKind::Mem, StorageKind::File, false},
        {StorageKind::File, StorageKind::Mem, false},
    };
    EXPECT_EQ(reduceFileCopies(ops).size(), 2u);
}

TEST(StaticAnalyzer, ClassifiesDirectIrCorrectly)
{
    StaticAnalyzer analyzer;
    StaticResult imread =
        analyzer.analyze(registry().require("cv2.imread"));
    EXPECT_EQ(imread.type, ApiType::Loading);
    EXPECT_TRUE(imread.complete);

    StaticResult blur =
        analyzer.analyze(registry().require("cv2.GaussianBlur"));
    EXPECT_EQ(blur.type, ApiType::Processing);

    StaticResult imshow =
        analyzer.analyze(registry().require("cv2.imshow"));
    EXPECT_EQ(imshow.type, ApiType::Visualizing);

    StaticResult imwrite =
        analyzer.analyze(registry().require("cv2.imwrite"));
    EXPECT_EQ(imwrite.type, ApiType::Storing);
}

TEST(StaticAnalyzer, ReducesGetFileToLoading)
{
    StaticAnalyzer analyzer;
    StaticResult res = analyzer.analyze(
        registry().require("tf.keras.utils.get_file"));
    EXPECT_EQ(res.type, ApiType::Loading);
}

TEST(StaticAnalyzer, BlindToIndirectFlows)
{
    // pandas/json/Matplotlib flows are hidden behind indirect
    // dispatch (Table 2 footnote): static result is incomplete.
    StaticAnalyzer analyzer;
    for (const char *name :
         {"pd.read_csv", "json.load", "plt.show", "plt.savefig"}) {
        StaticResult res = analyzer.analyze(registry().require(name));
        EXPECT_FALSE(res.complete) << name;
        EXPECT_EQ(res.type, ApiType::Unknown) << name;
    }
}

TEST(DynamicTracer, ObservesHiddenFlows)
{
    DynamicTracer tracer;
    TraceResult res = tracer.trace(registry().require("pd.read_csv"));
    EXPECT_TRUE(res.executed);
    EXPECT_EQ(fw::classifyFlowOps(res.ops), ApiType::Loading);
}

TEST(DynamicTracer, CapturesSyscallProfile)
{
    DynamicTracer tracer;
    TraceResult res = tracer.trace(registry().require("cv2.imread"));
    ASSERT_TRUE(res.executed);
    EXPECT_TRUE(res.syscalls.count(osim::Syscall::Openat));
    EXPECT_TRUE(res.syscalls.count(osim::Syscall::Read));
    EXPECT_FALSE(res.syscalls.count(osim::Syscall::Send));
}

TEST(DynamicTracer, VisualizingApiUsesGuiSyscalls)
{
    DynamicTracer tracer;
    TraceResult res = tracer.trace(registry().require("cv2.imshow"));
    ASSERT_TRUE(res.executed);
    EXPECT_TRUE(res.syscalls.count(osim::Syscall::Sendto));
}

TEST(DynamicTracer, CoverageIsHighOnOurRegistry)
{
    DynamicTracer tracer;
    for (fw::Framework framework :
         {fw::Framework::OpenCV, fw::Framework::PyTorch,
          fw::Framework::Caffe, fw::Framework::TensorFlow}) {
        CoverageReport report =
            tracer.coverFramework(registry(), framework);
        EXPECT_GT(report.apisTotal, 0u);
        // The paper reports 80-92% on the real frameworks (Table
        // 11); our registry only contains driveable APIs, so the
        // bound here is higher.
        EXPECT_GE(report.apiCoverage(), 0.9)
            << fw::frameworkName(framework);
    }
}

TEST(HybridCategorizer, MatchesGroundTruthForEveryApi)
{
    HybridCategorizer categorizer(registry());
    Categorization cats = categorizer.categorizeAll();
    ASSERT_EQ(cats.size(), registry().size());
    for (const fw::ApiDescriptor &api : registry().all()) {
        ASSERT_TRUE(cats.count(api.name)) << api.name;
        EXPECT_EQ(cats.at(api.name).type, api.declaredType)
            << api.name;
    }
}

TEST(HybridCategorizer, DynamicPassUsedExactlyForIndirectApis)
{
    HybridCategorizer categorizer(registry());
    Categorization cats = categorizer.categorizeAll();
    EXPECT_TRUE(cats.at("pd.read_csv").usedDynamic);
    EXPECT_TRUE(cats.at("plt.show").usedDynamic);
    EXPECT_FALSE(cats.at("cv2.imread").usedDynamic);
    EXPECT_FALSE(cats.at("cv2.GaussianBlur").usedDynamic);
}

TEST(HybridCategorizer, SyscallProfilesPopulated)
{
    HybridCategorizer categorizer(registry());
    Categorization cats =
        categorizer.categorize({"cv2.imread", "cv2.imshow"});
    EXPECT_TRUE(
        cats.at("cv2.imread").syscalls.count(osim::Syscall::Openat));
    EXPECT_TRUE(
        cats.at("cv2.imshow").syscalls.count(osim::Syscall::Connect));
}

TEST(HybridCategorizer, NeutralDetectionFromCallSequence)
{
    HybridCategorizer categorizer(registry());
    Categorization cats = categorizer.categorize(
        {"cv2.imread", "cv2.cvtColor", "cv2.GaussianBlur",
         "cv2.erode", "cv2.imshow"});
    // cvtColor always borders a loading or visualizing API (the
    // paper's imread -> cvtColor -> ... -> imshow pattern), while
    // GaussianBlur mostly sits inside processing chains.
    std::vector<std::string> seq = {
        "cv2.imread", "cv2.cvtColor", "cv2.imshow",
        "cv2.imread", "cv2.cvtColor", "cv2.GaussianBlur",
        "cv2.erode",  "cv2.GaussianBlur", "cv2.erode",
        "cv2.imshow"};
    categorizer.detectNeutral(cats, seq);
    EXPECT_TRUE(cats.at("cv2.cvtColor").typeNeutral);
    EXPECT_FALSE(cats.at("cv2.GaussianBlur").typeNeutral);
}

TEST(HybridCategorizer, CountByType)
{
    HybridCategorizer categorizer(registry());
    Categorization cats = categorizer.categorize(
        {"cv2.imread", "cv2.GaussianBlur", "cv2.erode",
         "cv2.imshow", "cv2.imwrite"});
    auto counts = HybridCategorizer::countByType(cats);
    EXPECT_EQ(counts[ApiType::Loading], 1u);
    EXPECT_EQ(counts[ApiType::Processing], 2u);
    EXPECT_EQ(counts[ApiType::Visualizing], 1u);
    EXPECT_EQ(counts[ApiType::Storing], 1u);
}

} // namespace
} // namespace freepart::analysis
