/**
 * @file
 * Unit tests for osim::AddressSpace: allocation, permission-checked
 * access, mprotect semantics, shared mappings, and fault behaviour —
 * the enforcement point behind FreePart's temporal protection.
 */

#include <gtest/gtest.h>

#include "osim/address_space.hh"

namespace freepart::osim {
namespace {

TEST(AddressSpace, AllocReturnsPageAlignedDistinctRegions)
{
    AddressSpace space(1);
    Addr a = space.alloc(100);
    Addr b = space.alloc(100);
    EXPECT_EQ(a % kPageSize, 0u);
    EXPECT_EQ(b % kPageSize, 0u);
    EXPECT_NE(a, b);
    EXPECT_GE(b, a + kPageSize);
}

TEST(AddressSpace, ReadBackWrittenBytes)
{
    AddressSpace space(1);
    Addr a = space.alloc(64);
    uint32_t v = 0xdeadbeef;
    space.writeValue(a + 8, v);
    EXPECT_EQ(space.readValue<uint32_t>(a + 8), 0xdeadbeefu);
}

TEST(AddressSpace, FreshAllocationIsZeroed)
{
    AddressSpace space(1);
    Addr a = space.alloc(256);
    for (int i = 0; i < 256; i += 7)
        EXPECT_EQ(space.readValue<uint8_t>(a + i), 0);
}

TEST(AddressSpace, UnmappedAccessFaults)
{
    AddressSpace space(1);
    EXPECT_THROW(space.readValue<uint8_t>(0xdead0000), MemFault);
    uint8_t b = 1;
    EXPECT_THROW(space.write(0xdead0000, &b, 1), MemFault);
}

TEST(AddressSpace, WriteToReadOnlyPageFaults)
{
    AddressSpace space(1);
    Addr a = space.alloc(kPageSize * 2);
    space.writeValue<uint32_t>(a, 7);
    space.protect(a, kPageSize * 2, PermRead);
    uint32_t v = 9;
    EXPECT_THROW(space.write(a, &v, sizeof(v)), MemFault);
    // Reads still succeed.
    EXPECT_EQ(space.readValue<uint32_t>(a), 7u);
}

TEST(AddressSpace, ProtectIsPageGranular)
{
    AddressSpace space(1);
    Addr a = space.alloc(kPageSize * 3);
    space.protect(a + kPageSize, kPageSize, PermRead);
    // First and third pages stay writable.
    space.writeValue<uint8_t>(a, 1);
    space.writeValue<uint8_t>(a + 2 * kPageSize, 1);
    EXPECT_THROW(space.writeValue<uint8_t>(a + kPageSize, 1),
                 MemFault);
    EXPECT_EQ(space.permsAt(a), PermRW);
    EXPECT_EQ(space.permsAt(a + kPageSize), PermRead);
}

TEST(AddressSpace, ReProtectRestoresWrite)
{
    AddressSpace space(1);
    Addr a = space.alloc(64);
    space.protect(a, 64, PermRead);
    space.protect(a, 64, PermRW);
    EXPECT_NO_THROW(space.writeValue<uint8_t>(a, 5));
}

TEST(AddressSpace, PermNoneBlocksReads)
{
    AddressSpace space(1);
    Addr a = space.alloc(64);
    space.protect(a, 64, PermNone);
    EXPECT_THROW(space.readValue<uint8_t>(a), MemFault);
}

TEST(AddressSpace, CrossMappingAccessFaults)
{
    AddressSpace space(1);
    Addr a = space.alloc(16);
    // Guard page between mappings: overrun faults.
    std::vector<uint8_t> big(2 * kPageSize, 0);
    EXPECT_THROW(space.write(a, big.data(), big.size()), MemFault);
}

TEST(AddressSpace, UnmapRemovesMapping)
{
    AddressSpace space(1);
    Addr a = space.alloc(64);
    space.unmap(a);
    EXPECT_THROW(space.readValue<uint8_t>(a), MemFault);
    EXPECT_EQ(space.permsAt(a), PermNone);
}

TEST(AddressSpace, SharedMappingSeesPeerWrites)
{
    AddressSpace p1(1), p2(2);
    auto backing = std::make_shared<std::vector<uint8_t>>(kPageSize);
    Addr a1 = p1.mapShared(backing, PermRW, "shm");
    Addr a2 = p2.mapShared(backing, PermRW, "shm");
    p1.writeValue<uint64_t>(a1 + 16, 0x1234567890abcdefull);
    EXPECT_EQ(p2.readValue<uint64_t>(a2 + 16), 0x1234567890abcdefull);
}

TEST(AddressSpace, MappedBytesTracksAllocations)
{
    AddressSpace space(1);
    size_t before = space.mappedBytes();
    space.alloc(1); // rounds to one page
    EXPECT_EQ(space.mappedBytes(), before + kPageSize);
}

TEST(AddressSpace, CheckedSpanHonoursPermissions)
{
    AddressSpace space(1);
    Addr a = space.alloc(128);
    EXPECT_NE(space.checkedSpan(a, 128, true), nullptr);
    space.protect(a, 128, PermRead);
    EXPECT_THROW(space.checkedSpan(a, 128, true), MemFault);
    EXPECT_NE(space.checkedSpan(a, 128), nullptr);
}

TEST(AddressSpace, FaultCarriesAddressAndDirection)
{
    AddressSpace space(5);
    Addr a = space.alloc(32);
    space.protect(a, 32, PermRead);
    try {
        space.writeValue<uint8_t>(a, 1);
        FAIL() << "expected fault";
    } catch (const MemFault &fault) {
        EXPECT_TRUE(fault.isWrite);
        EXPECT_EQ(fault.pid, 5u);
        EXPECT_EQ(pageBase(fault.addr), pageBase(a));
    }
}

} // namespace
} // namespace freepart::osim
