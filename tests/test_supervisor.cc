/**
 * @file
 * Tests for the agent supervision layer: retry budgets, simulated-time
 * exponential backoff, crash-loop quarantine with host-fallback
 * degradation, checkpoint integrity (checksums + generation
 * fallback), and the at-least-once dedup cache surviving restarts.
 */

#include <gtest/gtest.h>

#include "core/runtime.hh"
#include "fw/image_format.hh"
#include "osim/fault_injection.hh"
#include "util/logging.hh"

namespace freepart::core {
namespace {

struct SupEnv {
    SupEnv() : registry(fw::buildFullRegistry())
    {
        analysis::HybridCategorizer categorizer(registry);
        cats = categorizer.categorizeAll();
    }

    std::unique_ptr<FreePartRuntime>
    makeRuntime(RuntimeConfig config = {})
    {
        kernel = std::make_unique<osim::Kernel>();
        injector = std::make_unique<osim::FaultInjector>(7);
        kernel->setFaultInjector(injector.get());
        fw::seedFixtureFiles(*kernel);
        return std::make_unique<FreePartRuntime>(
            *kernel, registry, cats, PartitionPlan::freePartDefault(),
            config);
    }

    /** Schedule unlimited crash faults on a partition's API calls. */
    void
    crashEveryCall(FreePartRuntime &runtime, uint32_t partition,
                   uint32_t count = 0)
    {
        osim::FaultSpec spec;
        spec.point = osim::FaultPoint::AgentCall;
        spec.action = osim::FaultAction::Crash;
        spec.pid = runtime.agentPid(partition);
        spec.count = count;
        injector->schedule(spec);
    }

    fw::ApiRegistry registry;
    analysis::Categorization cats;
    std::unique_ptr<osim::Kernel> kernel;
    std::unique_ptr<osim::FaultInjector> injector;
};

SupEnv &
env()
{
    static SupEnv instance;
    return instance;
}

ApiResult
blurFreshMat(FreePartRuntime &runtime, uint64_t seed)
{
    uint64_t id = runtime.createHostMat(8, 8, 1, seed, "m");
    return runtime.invoke(
        "cv2.GaussianBlur",
        {ipc::Value(ipc::ObjectRef{kHostPartition, id})});
}

TEST(Supervisor, RetryBudgetExhaustionSurfacesAgentCrashed)
{
    auto runtime = env().makeRuntime();
    env().crashEveryCall(*runtime, 1);
    ApiResult result = blurFreshMat(*runtime, 1);
    EXPECT_FALSE(result.ok);
    EXPECT_TRUE(result.agentCrashed);
    EXPECT_NE(result.error.find("retry budget"), std::string::npos)
        << result.error;
    const RunStats &stats = runtime->stats();
    EXPECT_EQ(stats.retriesExhausted, 1u);
    // retryBudget=3 means 4 delivery attempts, all crashed.
    EXPECT_EQ(stats.agentCrashes, 4u);
    EXPECT_EQ(stats.retriedCalls, 3u);
    EXPECT_TRUE(runtime->hostAlive());
}

TEST(Supervisor, CrashLoopQuarantinesWithinConfiguredWindow)
{
    RuntimeConfig config;
    config.supervision.crashLoopThreshold = 2;
    config.supervision.retryBudget = 5;
    auto runtime = env().makeRuntime(config);
    env().crashEveryCall(*runtime, 1);
    ApiResult result = blurFreshMat(*runtime, 1);
    // The 2nd crash inside the window quarantines the partition. The
    // quarantining call itself fails typed — its input crashed the
    // agent twice, so it is suspect and never re-executed in the
    // host (a poisoned frame must not escape into the host process).
    EXPECT_FALSE(result.ok);
    EXPECT_TRUE(result.quarantined);
    EXPECT_TRUE(result.agentCrashed);
    EXPECT_NE(result.error.find("suspect input"), std::string::npos)
        << result.error;
    EXPECT_TRUE(runtime->supervisor().quarantined(1));
    EXPECT_EQ(runtime->supervisor().stats().crashesObserved, 2u);
    EXPECT_EQ(runtime->stats().quarantines, 1u);
    EXPECT_EQ(runtime->stats().hostFallbackCalls, 0u);
    // A fresh call arriving after the quarantine does degrade to the
    // host (GaussianBlur is not stateful).
    ApiResult next = blurFreshMat(*runtime, 2);
    EXPECT_TRUE(next.ok) << next.error;
    EXPECT_TRUE(next.quarantined);
    EXPECT_FALSE(next.agentCrashed);
    EXPECT_EQ(runtime->stats().hostFallbackCalls, 1u);
    EXPECT_TRUE(runtime->hostAlive());
}

TEST(Supervisor, QuarantineDegradesGracefully)
{
    auto runtime = env().makeRuntime();
    env().crashEveryCall(*runtime, 1);
    // Default policy: crash-loop threshold 5. The first call burns
    // its budget; the second crosses the threshold mid-recovery.
    ApiResult first = blurFreshMat(*runtime, 1);
    EXPECT_FALSE(first.ok);
    // The second call crosses the threshold mid-recovery; having
    // crashed the agent itself, it fails typed rather than carrying
    // its suspect input into the host.
    ApiResult second = blurFreshMat(*runtime, 2);
    EXPECT_FALSE(second.ok);
    EXPECT_TRUE(second.quarantined);
    ASSERT_TRUE(runtime->supervisor().quarantined(1));

    // Non-stateful APIs arriving afterwards complete via the host...
    ApiResult third = blurFreshMat(*runtime, 3);
    EXPECT_TRUE(third.ok) << third.error;
    EXPECT_GE(runtime->stats().hostFallbackCalls, 1u);

    // ...while stateful APIs on the quarantined partition fail fast
    // with a typed error instead of running without their state.
    ApiResult model = runtime->invoke(
        "torch.load", {ipc::Value(std::string("/data/model.fpt"))});
    ASSERT_TRUE(model.ok) << model.error;
    ApiResult train = runtime->invoke(
        "tf.estimator.DNNClassifier.train",
        {model.values[0], model.values[0]});
    EXPECT_FALSE(train.ok);
    EXPECT_TRUE(train.quarantined);
    EXPECT_FALSE(train.agentCrashed);
    EXPECT_NE(train.error.find("quarantined"), std::string::npos)
        << train.error;
    EXPECT_EQ(runtime->stats().statefulFastFails, 1u);
}

TEST(Supervisor, HostileInputNeverFallsBackToHost)
{
    // A real DoS payload (not an injected fault) that crashes the
    // loading agent on every delivery. Driving it into quarantine
    // must not re-execute the poisoned frame inside the host — the
    // drone case study's attack would otherwise escape containment.
    RuntimeConfig config;
    config.supervision.crashLoopThreshold = 2;
    config.supervision.retryBudget = 5;
    auto runtime = env().makeRuntime(config);
    fw::ExploitPayload dos;
    dos.kind = fw::PayloadKind::Dos;
    dos.cve = "CVE-2017-14136";
    env().kernel->vfs().putFile(
        "/spool/dos.fpim",
        fw::encodeImageFile(8, 8, 1, fw::synthPixels(8, 8, 1, 0),
                            dos));
    ApiResult hostile = runtime->invoke(
        "cv2.imread", {ipc::Value(std::string("/spool/dos.fpim"))});
    EXPECT_FALSE(hostile.ok);
    EXPECT_TRUE(hostile.quarantined);
    EXPECT_NE(hostile.error.find("suspect input"), std::string::npos)
        << hostile.error;
    EXPECT_TRUE(runtime->supervisor().quarantined(0));
    EXPECT_EQ(runtime->stats().hostFallbackCalls, 0u);
    EXPECT_TRUE(runtime->hostAlive());

    // A benign frame afterwards still loads, degraded to the host.
    ApiResult benign = runtime->invoke(
        "cv2.imread", {ipc::Value(std::string("/data/test.fpim"))});
    EXPECT_TRUE(benign.ok) << benign.error;
    EXPECT_TRUE(benign.quarantined);
    EXPECT_TRUE(runtime->hostAlive());
}

TEST(Supervisor, BackoffIsChargedInSimulatedTime)
{
    auto runtime = env().makeRuntime();
    // First two respawns are stillborn; the third succeeds.
    osim::FaultSpec spec;
    spec.point = osim::FaultPoint::Respawn;
    spec.action = osim::FaultAction::Crash;
    spec.pid = runtime->agentPid(1);
    spec.count = 2;
    env().injector->schedule(spec);
    env().kernel->faultProcess(
        env().kernel->process(runtime->agentPid(1)), "induced");
    ApiResult result = blurFreshMat(*runtime, 1);
    EXPECT_TRUE(result.ok) << result.error;
    const RunStats &stats = runtime->stats();
    // Attempt 1 is immediate; attempts 2 and 3 wait 0.2 ms and
    // 0.4 ms of simulated time (base 200 us, factor 2).
    EXPECT_EQ(stats.backoffTime, 600'000u);
    EXPECT_EQ(stats.agentRestarts, 3u);
    EXPECT_EQ(runtime->supervisor().stats().restartsFailed, 2u);
    EXPECT_EQ(stats.recoveries, 1u);
    EXPECT_GT(stats.meanTimeToRecover(), 0u);
    EXPECT_EQ(runtime->supervisor().health(1), AgentHealth::Healthy);
}

TEST(Supervisor, CrashDuringRestoreIsSurvived)
{
    auto runtime = env().makeRuntime();
    osim::FaultSpec spec;
    spec.point = osim::FaultPoint::Restore;
    spec.action = osim::FaultAction::Crash;
    spec.pid = runtime->agentPid(1);
    env().injector->schedule(spec);
    env().kernel->faultProcess(
        env().kernel->process(runtime->agentPid(1)), "induced");
    // Restart 1 dies inside checkpoint restore; restart 2 completes
    // and the call goes through.
    ApiResult result = blurFreshMat(*runtime, 1);
    EXPECT_TRUE(result.ok) << result.error;
    EXPECT_EQ(runtime->stats().agentRestarts, 2u);
    EXPECT_EQ(runtime->supervisor().stats().restartsFailed, 1u);
}

TEST(Supervisor, CorruptedCheckpointFallsBackAGeneration)
{
    RuntimeConfig config;
    config.checkpointInterval = 1; // checkpoint after every call
    auto runtime = env().makeRuntime(config);
    ApiResult model = runtime->invoke(
        "torch.load", {ipc::Value(std::string("/data/model.fpt"))});
    ASSERT_TRUE(model.ok) << model.error;
    ApiResult data = runtime->invoke(
        "torch.load", {ipc::Value(std::string("/data/model.fpt"))});
    ASSERT_TRUE(data.ok) << data.error;
    uint64_t weights_id = model.values[0].asRef().objectId;

    ASSERT_TRUE(runtime
                    ->invoke("tf.estimator.DNNClassifier.train",
                             {model.values[0], data.values[0]})
                    .ok);
    uint32_t p = runtime->homeOf(weights_id);
    std::vector<uint8_t> v1 = runtime->storeOf(p).serialize(weights_id);

    // The next checkpoint of this agent is corrupted after its
    // checksums are computed (bit rot on the stored snapshot).
    osim::FaultSpec spec;
    spec.point = osim::FaultPoint::Checkpoint;
    spec.action = osim::FaultAction::Corrupt;
    spec.pid = runtime->agentPid(p);
    env().injector->schedule(spec);
    ASSERT_TRUE(runtime
                    ->invoke("tf.estimator.DNNClassifier.train",
                             {model.values[0], data.values[0]})
                    .ok);
    std::vector<uint8_t> v2 = runtime->storeOf(p).serialize(weights_id);
    ASSERT_NE(v1, v2); // training moved the weights

    env().kernel->faultProcess(
        env().kernel->process(runtime->agentPid(p)), "induced");
    ASSERT_TRUE(runtime->restartAgent(p));
    // The corrupt newest generation failed verification; the restore
    // fell back to the previous good one (weights after train #1).
    EXPECT_EQ(runtime->storeOf(p).serialize(weights_id), v1);
    EXPECT_EQ(runtime->stats().checkpointFallbacks, 1u);
    EXPECT_GT(runtime->stats().checkpointBytesRestored, 0u);
}

TEST(Supervisor, LostResponseIsServedFromDedupCache)
{
    auto runtime = env().makeRuntime();
    osim::FaultSpec spec;
    spec.point = osim::FaultPoint::RingTransfer;
    spec.action = osim::FaultAction::Transient;
    spec.pid = runtime->hostPid(); // response direction only
    env().injector->schedule(spec);
    ApiResult result =
        runtime->invoke("cv2.imread",
                        {ipc::Value(std::string("/data/test.fpim"))});
    EXPECT_TRUE(result.ok) << result.error;
    // The API ran once; the re-delivery was answered from the cache
    // instead of executing again.
    EXPECT_EQ(runtime->stats().dedupHits, 1u);
    EXPECT_EQ(runtime->stats().channelLosses, 1u);
}

TEST(Supervisor, SeqCacheSurvivesAgentRestart)
{
    auto runtime = env().makeRuntime();
    ApiResult result = blurFreshMat(*runtime, 1);
    ASSERT_TRUE(result.ok) << result.error;
    runtime->fetchToHost(result.values[0].asRef());
    ASSERT_EQ(runtime->seqCacheSize(1), 1u);
    env().kernel->faultProcess(
        env().kernel->process(runtime->agentPid(1)), "induced");
    ASSERT_TRUE(runtime->restartAgent(1));
    // Host-side dedup state must not die with the agent: a
    // re-delivered request after the respawn still deduplicates.
    EXPECT_EQ(runtime->seqCacheSize(1), 1u);
}

TEST(Supervisor, PruneDropsCachedResponsesWithDeadRefs)
{
    auto runtime = env().makeRuntime();
    ApiResult result = blurFreshMat(*runtime, 1);
    ASSERT_TRUE(result.ok) << result.error;
    ASSERT_EQ(runtime->seqCacheSize(1), 1u);
    // No host copy and no checkpoint: the blurred object dies with
    // the agent, so its cached response becomes unservable.
    env().kernel->faultProcess(
        env().kernel->process(runtime->agentPid(1)), "induced");
    ASSERT_TRUE(runtime->restartAgent(1));
    EXPECT_EQ(runtime->seqCacheSize(1), 0u);
}

TEST(Supervisor, RestartOffLosesTheCallInstead)
{
    RuntimeConfig config;
    config.restartAgents = false;
    auto runtime = env().makeRuntime(config);
    env().crashEveryCall(*runtime, 1, 1); // a single crash
    ApiResult result = blurFreshMat(*runtime, 1);
    EXPECT_FALSE(result.ok);
    EXPECT_TRUE(result.agentCrashed);
    EXPECT_NE(result.error.find("dead"), std::string::npos)
        << result.error;
    EXPECT_EQ(runtime->stats().agentRestarts, 0u);
    // The partition stays dead: later calls fail too.
    ApiResult later = blurFreshMat(*runtime, 2);
    EXPECT_FALSE(later.ok);
}

} // namespace
} // namespace freepart::core
