/**
 * @file
 * Unit tests for the util module: logging levels/errors, the
 * deterministic RNG (including the deterministic logarithm, the
 * exponential draw behind Poisson arrivals, and the Zipf popularity
 * sampler), table rendering, and running statistics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/logging.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace freepart::util {
namespace {

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("boom %d", 42), PanicError);
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config '%s'", "x"), FatalError);
}

TEST(Logging, FatalMessageContainsFormattedText)
{
    try {
        fatal("value=%d name=%s", 7, "seven");
        FAIL() << "fatal did not throw";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("value=7"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("name=seven"),
                  std::string::npos);
    }
}

TEST(Logging, LevelRoundTrips)
{
    LogLevel old = logLevel();
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(old);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 50; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(13);
    std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<int> orig = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(DetLog, MatchesLibmAcrossTheDynamicRange)
{
    // Spot values plus a sweep over many binades: the atanh-series
    // decomposition must agree with libm to near machine precision
    // (it only has to be *deterministic*, but it should also be
    // *right*).
    EXPECT_NEAR(detLog(1.0), 0.0, 1e-15);
    EXPECT_NEAR(detLog(2.0), 0.6931471805599453, 1e-15);
    EXPECT_NEAR(detLog(10.0), std::log(10.0), 1e-14);
    for (double x : {1e-300, 1e-9, 0.1, 0.5, 1.5, 3.0, 1e9, 1e300})
        EXPECT_NEAR(detLog(x), std::log(x), std::abs(std::log(x)) * 1e-14 + 1e-14)
            << "x=" << x;
    // Subnormals take the rescale branch and stay finite.
    double subnormal = 5e-324;
    EXPECT_NEAR(detLog(subnormal), std::log(subnormal), 1e-10);
    // Total on the guarded domain.
    EXPECT_EQ(detLog(0.0), 0.0);
    EXPECT_EQ(detLog(-3.0), 0.0);
}

TEST(Rng, ExponentialHasTheRequestedMean)
{
    Rng rng(77);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double draw = rng.exponential(250.0);
        ASSERT_GE(draw, 0.0);
        sum += draw;
    }
    EXPECT_NEAR(sum / n, 250.0, 250.0 * 0.05);

    // Bit-identical replay: same seed, same stream.
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.exponential(1.0), b.exponential(1.0));
}

TEST(ZipfSampler, ExponentZeroIsUniform)
{
    const size_t n = 8;
    ZipfSampler zipf(n, 0.0);
    Rng rng(31);
    std::vector<size_t> counts(n, 0);
    const size_t draws = 16000;
    for (size_t i = 0; i < draws; ++i) {
        size_t rank = zipf.draw(rng);
        ASSERT_LT(rank, n);
        ++counts[rank];
    }
    double expected = static_cast<double>(draws) / n;
    double chi2 = 0.0;
    for (size_t count : counts) {
        double diff = static_cast<double>(count) - expected;
        chi2 += diff * diff / expected;
    }
    // df=7; uniform lands well under 30, a Zipf-skewed sampler
    // masquerading as uniform scores in the hundreds.
    EXPECT_LT(chi2, 30.0) << "chi2=" << chi2;
}

TEST(ZipfSampler, LargeExponentConcentratesOnRankZero)
{
    ZipfSampler zipf(1000, 4.0);
    Rng rng(19);
    size_t zeros = 0;
    const size_t draws = 4000;
    for (size_t i = 0; i < draws; ++i)
        if (zipf.draw(rng) == 0)
            ++zeros;
    // P(0) = 1/zeta(4) ~ 0.924; anything below 0.85 means the CDF is
    // inverted or the hottest rank is not rank 0.
    EXPECT_GT(static_cast<double>(zeros) / draws, 0.85);
}

TEST(ZipfSampler, ModerateSkewOrdersRanksByPopularity)
{
    const size_t n = 50;
    ZipfSampler zipf(n, 1.1);
    Rng rng(57);
    std::vector<size_t> counts(n, 0);
    for (size_t i = 0; i < 30000; ++i)
        ++counts[zipf.draw(rng)];
    // Head dominates tail and the long tail is still reachable.
    EXPECT_GT(counts[0], counts[9]);
    EXPECT_GT(counts[0], 10 * counts[n - 1]);
    size_t touched = 0;
    for (size_t count : counts)
        if (count > 0)
            ++touched;
    EXPECT_EQ(touched, n);
}

TEST(ZipfSampler, SingleElementDomainAlwaysDrawsZero)
{
    ZipfSampler zipf(1, 1.2);
    Rng rng(3);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(zipf.draw(rng), 0u);
}

TEST(ZipfSampler, DrawsAreDeterministicAndConsumeOneValue)
{
    ZipfSampler zipf(64, 0.9);
    Rng a(5), b(5);
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(zipf.draw(a), zipf.draw(b));
    // Exactly one raw value per draw: the streams stay in lockstep
    // with a raw next() consumer.
    Rng c(5);
    for (int i = 0; i < 200; ++i)
        c.next();
    EXPECT_EQ(a.next(), c.next());
}

TEST(Table, RendersHeadersAndRows)
{
    TextTable t({"Name", "Value"});
    t.addRow({"alpha", "1"});
    t.addRow({"beta", "22"});
    std::string out = t.render();
    EXPECT_NE(out.find("Name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, ShortRowsPadded)
{
    TextTable t({"A", "B", "C"});
    t.addRow({"only"});
    EXPECT_NO_THROW(t.render());
}

TEST(Table, Formatters)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtPercent(0.0368), "3.68%");
    EXPECT_EQ(fmtCount(12411), "12,411");
    EXPECT_EQ(fmtCount(7), "7");
    EXPECT_EQ(fmtCount(1234567), "1,234,567");
}

TEST(RunningStat, MeanMinMaxStddev)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.stddev(), 2.138, 0.01);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
}

} // namespace
} // namespace freepart::util
