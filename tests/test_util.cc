/**
 * @file
 * Unit tests for the util module: logging levels/errors, the
 * deterministic RNG, table rendering, and running statistics.
 */

#include <gtest/gtest.h>

#include "util/logging.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace freepart::util {
namespace {

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("boom %d", 42), PanicError);
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config '%s'", "x"), FatalError);
}

TEST(Logging, FatalMessageContainsFormattedText)
{
    try {
        fatal("value=%d name=%s", 7, "seven");
        FAIL() << "fatal did not throw";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("value=7"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("name=seven"),
                  std::string::npos);
    }
}

TEST(Logging, LevelRoundTrips)
{
    LogLevel old = logLevel();
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(old);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 50; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(13);
    std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<int> orig = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Table, RendersHeadersAndRows)
{
    TextTable t({"Name", "Value"});
    t.addRow({"alpha", "1"});
    t.addRow({"beta", "22"});
    std::string out = t.render();
    EXPECT_NE(out.find("Name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, ShortRowsPadded)
{
    TextTable t({"A", "B", "C"});
    t.addRow({"only"});
    EXPECT_NO_THROW(t.render());
}

TEST(Table, Formatters)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtPercent(0.0368), "3.68%");
    EXPECT_EQ(fmtCount(12411), "12,411");
    EXPECT_EQ(fmtCount(7), "7");
    EXPECT_EQ(fmtCount(1234567), "1,234,567");
}

TEST(RunningStat, MeanMinMaxStddev)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.stddev(), 2.138, 0.01);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
}

} // namespace
} // namespace freepart::util
