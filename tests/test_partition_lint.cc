/**
 * @file
 * Partition-boundary linter tests (DESIGN.md §12): per-class seeded
 * fixtures (planted wide allowlist, by-value critical argument,
 * miscategorized API, registry drift), the --fix round trip reaching
 * a clean lint, baseline diffing, and JSON determinism.
 */

#include <gtest/gtest.h>

#include "analysis/partition_lint.hh"
#include "util/logging.hh"

using namespace freepart;
using namespace freepart::analysis;

namespace {

/** Shared real inputs: the full registry categorized by the hybrid
 *  pipeline, replayed over a few Table 6 apps (enough to populate
 *  observed syscalls and reachability; tests that need all 23 use
 *  plantings instead of more replays to stay fast). */
class PartitionLintTest : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        registry_ = new fw::ApiRegistry(fw::buildFullRegistry());
        HybridCategorizer categorizer(*registry_);
        cats_ = new Categorization(categorizer.categorizeAll());
        CollectOptions opts;
        opts.maxApps = 6;
        input_ = new LintInput(
            collectLintInput(*registry_, *cats_, opts));
    }

    static void TearDownTestSuite()
    {
        delete input_;
        delete cats_;
        delete registry_;
        input_ = nullptr;
        cats_ = nullptr;
        registry_ = nullptr;
    }

    /** A fresh copy of the collected input for mutation. */
    LintInput input() const { return *input_; }

    static fw::ApiRegistry *registry_;
    static Categorization *cats_;
    static LintInput *input_;
};

fw::ApiRegistry *PartitionLintTest::registry_ = nullptr;
Categorization *PartitionLintTest::cats_ = nullptr;
LintInput *PartitionLintTest::input_ = nullptr;

// ---- Collector ------------------------------------------------------

TEST_F(PartitionLintTest, CollectorPopulatesAgentsAndReachability)
{
    LintInput in = input();
    ASSERT_EQ(in.agents.size(), 4u);
    EXPECT_EQ(in.appsReplayed, 6u);
    for (const AgentSnapshot &agent : in.agents) {
        EXPECT_FALSE(agent.name.empty());
        // Lockdown installed a real allowlist on every agent.
        EXPECT_FALSE(agent.allowlist.empty()) << agent.name;
    }
    EXPECT_FALSE(in.reachableApis.empty());
    // Observed syscalls never escape the installed allowlist — except
    // init-only ones (mprotect/connect), which legally fire during
    // the grace period and are then dropped at lockdown.
    for (const AgentSnapshot &agent : in.agents)
        for (osim::Syscall call : agent.observed)
            EXPECT_TRUE(agent.allowlist.count(call) ||
                        osim::isInitOnlySyscall(call))
                << agent.name << " observed non-allowed "
                << osim::syscallName(call);
}

// ---- L1: by-value crossing ------------------------------------------

TEST_F(PartitionLintTest, DetectsPlantedCriticalByValueCrossing)
{
    LintInput in = input();
    size_t before =
        PartitionLinter().lint(in).countByDefect(
            LintDefect::ByValueCrossing);
    plantByValueCrossing(in);
    LintReport report = PartitionLinter().lint(in);
    EXPECT_EQ(report.countByDefect(LintDefect::ByValueCrossing),
              before + 1);
    const LintFinding *finding = report.findByKey(
        "L1:cv2.matchTemplate:arg1:planted:omr-template");
    ASSERT_NE(finding, nullptr);
    EXPECT_EQ(finding->severity, LintSeverity::Error);
    EXPECT_EQ(finding->repair.kind, LintRepairKind::ForceLdcRef);
    EXPECT_EQ(finding->repair.argIndex, 1u);
}

TEST_F(PartitionLintTest, SmallNonCriticalBlobIsIgnored)
{
    LintInput in = input();
    ValueCrossing small;
    small.api = "cv2.resize";
    small.bytes = 16; // scalar-sized payload
    in.crossings.push_back(small);
    LintReport report = PartitionLinter().lint(in);
    EXPECT_EQ(report.findByKey("L1:cv2.resize:arg0:blob"), nullptr);
}

TEST_F(PartitionLintTest, RepeatedCrossingEmitsOneFinding)
{
    LintInput in = input();
    plantByValueCrossing(in);
    plantByValueCrossing(in); // same call site, second replay
    LintReport report = PartitionLinter().lint(in);
    size_t hits = 0;
    for (const LintFinding &finding : report.findings)
        if (finding.key ==
            "L1:cv2.matchTemplate:arg1:planted:omr-template")
            ++hits;
    EXPECT_EQ(hits, 1u);
}

// ---- L2: wide allowlist ---------------------------------------------

TEST_F(PartitionLintTest, DetectsPlantedWideAllowlist)
{
    LintInput in = input();
    plantWideAllowlist(in); // adds send+write to agent 0
    LintReport report = PartitionLinter().lint(in);
    ASSERT_GE(report.countByDefect(LintDefect::WideAllowlist), 1u);
    bool found = false;
    for (const LintFinding &finding : report.findings) {
        if (finding.defect != LintDefect::WideAllowlist ||
            finding.subject != in.agents[0].name)
            continue;
        found = true;
        // send/write are exfiltration syscalls: Error, not Warning.
        EXPECT_EQ(finding.severity, LintSeverity::Error);
        EXPECT_EQ(finding.repair.kind,
                  LintRepairKind::NarrowAllowlist);
        EXPECT_FALSE(
            finding.repair.narrowedAllowlist.count(
                osim::Syscall::Send));
    }
    EXPECT_TRUE(found);
}

TEST_F(PartitionLintTest, WideningChangesTheFindingKey)
{
    // The CI-gate property: a baseline accepting today's surplus must
    // NOT accept a further-widened filter.
    LintInput in = input();
    plantWideAllowlist(in);
    PartitionLinter linter;
    LintBaseline baseline;
    for (const LintFinding &finding : linter.lint(in).findings)
        baseline.acceptedKeys.insert(finding.key);
    EXPECT_TRUE(newFindings(linter.lint(in), baseline).empty());

    in.agents[0].allowlist.insert(osim::Syscall::Execve);
    LintReport widened = linter.lint(in);
    auto fresh = newFindings(widened, baseline);
    ASSERT_EQ(fresh.size(), 1u);
    EXPECT_EQ(fresh[0]->defect, LintDefect::WideAllowlist);
}

TEST_F(PartitionLintTest, SlackSuppressesAllowlistFinding)
{
    LintInput in;
    in.registry = registry_;
    AgentSnapshot agent;
    agent.partition = 2;
    agent.name = "agent:visualizing";
    agent.observed = {osim::Syscall::Read};
    agent.allowlist = {osim::Syscall::Read, osim::Syscall::Ioctl};
    in.agents.push_back(agent);

    EXPECT_EQ(PartitionLinter().lint(in).countByDefect(
                  LintDefect::WideAllowlist),
              1u);
    LintConfig config;
    config.allowlistSlack.insert(osim::Syscall::Ioctl);
    EXPECT_EQ(PartitionLinter(config).lint(in).countByDefect(
                  LintDefect::WideAllowlist),
              0u);
}

// ---- L3: miscategorized API -----------------------------------------

TEST_F(PartitionLintTest, DetectsPlantedMiscategorization)
{
    LintInput in = input();
    plantMiscategorization(in);
    LintReport report = PartitionLinter().lint(in);
    ASSERT_EQ(report.countByDefect(LintDefect::MiscategorizedApi),
              1u);
    const LintFinding *finding = nullptr;
    for (const LintFinding &candidate : report.findings)
        if (candidate.defect == LintDefect::MiscategorizedApi)
            finding = &candidate;
    ASSERT_NE(finding, nullptr);
    EXPECT_EQ(finding->severity, LintSeverity::Error);
    EXPECT_EQ(finding->repair.kind, LintRepairKind::RecategorizeApi);
    EXPECT_EQ(finding->repair.newType, fw::ApiType::Loading);
}

TEST_F(PartitionLintTest, CleanCategorizationHasNoL3Findings)
{
    LintReport report = PartitionLinter().lint(input());
    EXPECT_EQ(report.countByDefect(LintDefect::MiscategorizedApi),
              0u);
}

// ---- L4: registry inconsistencies -----------------------------------

TEST_F(PartitionLintTest, DetectsPlantedRegistryDrift)
{
    LintInput in = input();
    plantRegistryInconsistency(in);
    LintReport report = PartitionLinter().lint(in);
    const LintFinding *stale =
        report.findByKey("L4:stale:cv2.removedInRefactor");
    ASSERT_NE(stale, nullptr);
    EXPECT_EQ(stale->repair.kind, LintRepairKind::DropStaleEntry);
    // One registry API lost its categorization entry.
    size_t uncategorized = 0;
    for (const LintFinding &finding : report.findings)
        if (finding.key.rfind("L4:uncategorized:", 0) == 0)
            ++uncategorized;
    EXPECT_GE(uncategorized, 1u);
}

TEST_F(PartitionLintTest, UnreachableApisReportedAsInfo)
{
    // With only 6 of 23 apps replayed, some implemented APIs must be
    // unreachable; they are advice-level, never gate-level.
    LintReport report = PartitionLinter().lint(input());
    bool any = false;
    for (const LintFinding &finding : report.findings) {
        if (finding.key.rfind("L4:unreachable:", 0) != 0)
            continue;
        any = true;
        EXPECT_EQ(finding.severity, LintSeverity::Info);
        EXPECT_FALSE(finding.repairable());
    }
    EXPECT_TRUE(any);
}

// ---- Repairs / --fix round trip -------------------------------------

TEST_F(PartitionLintTest, FixConvergesOnAllPlantedDefects)
{
    LintInput in = input();
    plantAllDefects(in);
    PartitionLinter linter;
    ASSERT_GE(linter.lint(in).repairableCount(), 4u);

    size_t rounds = 0;
    LintReport fixedpoint = linter.fixToConvergence(in, 8, &rounds);
    EXPECT_GE(rounds, 1u);
    // Fixed point: nothing left that a repair could change...
    EXPECT_EQ(fixedpoint.repairableCount(), 0u);
    // ...and every planted gate-level defect is gone (only
    // advice-level unreachable/unrepairable findings may remain).
    EXPECT_EQ(fixedpoint.countAtLeast(LintSeverity::Warning), 0u);
    // Re-linting the repaired input is stable.
    LintReport again = linter.lint(in);
    EXPECT_EQ(again.findings.size(), fixedpoint.findings.size());
}

TEST_F(PartitionLintTest, ApplyRepairsNarrowsTheAllowlist)
{
    LintInput in = input();
    plantWideAllowlist(in);
    PartitionLinter linter;
    LintReport report = linter.lint(in);
    EXPECT_GT(linter.applyRepairs(in, report), 0u);
    EXPECT_FALSE(
        in.agents[0].allowlist.count(osim::Syscall::Send));
    // Everything observed survives the narrowing.
    for (osim::Syscall call : in.agents[0].observed)
        EXPECT_TRUE(in.agents[0].allowlist.count(call));
}

// ---- Serialization / baseline ---------------------------------------

TEST_F(PartitionLintTest, JsonIsDeterministicAcrossRuns)
{
    LintInput a = input();
    LintInput b = input();
    plantAllDefects(a);
    plantAllDefects(b);
    PartitionLinter linter;
    LintReport ra = linter.lint(a);
    LintReport rb = linter.lint(b);
    EXPECT_EQ(reportToJson(ra, a), reportToJson(rb, b));
    EXPECT_EQ(baselineToJson(ra), baselineToJson(rb));
}

TEST_F(PartitionLintTest, BaselineRoundTripSuppressesOldFindings)
{
    LintInput in = input();
    plantAllDefects(in);
    LintReport report = PartitionLinter().lint(in);
    ASSERT_FALSE(report.findings.empty());
    LintBaseline baseline = parseBaseline(baselineToJson(report));
    EXPECT_EQ(baseline.acceptedKeys.size(), report.findings.size());
    EXPECT_TRUE(newFindings(report, baseline).empty());

    std::string json = reportToJson(report, in, &baseline);
    EXPECT_NE(json.find("\"new\": 0"), std::string::npos);
    EXPECT_NE(json.find("\"baselined\": true"), std::string::npos);
    EXPECT_EQ(json.find("\"baselined\": false"), std::string::npos);
}

TEST_F(PartitionLintTest, EmptyBaselineGatesEverything)
{
    LintInput in = input();
    plantAllDefects(in);
    LintReport report = PartitionLinter().lint(in);
    LintBaseline empty;
    EXPECT_EQ(newFindings(report, empty).size(),
              report.findings.size());
}

TEST(PartitionLintNames, EnumTablesAreTotal)
{
    EXPECT_STREQ(lintDefectCode(LintDefect::ByValueCrossing), "L1");
    EXPECT_STREQ(lintDefectCode(LintDefect::RegistryInconsistency),
                 "L4");
    EXPECT_STREQ(lintDefectName(LintDefect::WideAllowlist),
                 "wide-allowlist");
    EXPECT_EQ(lintSeverityFromName("error"), LintSeverity::Error);
    EXPECT_THROW(lintSeverityFromName("nope"), util::FatalError);
    EXPECT_STREQ(lintRepairKindName(LintRepairKind::ForceLdcRef),
                 "force-ldc-ref");
}

TEST(PartitionLintConfig, DefaultSlackIsTheInfraSet)
{
    std::set<osim::Syscall> slack =
        LintConfig::defaultAllowlistSlack();
    EXPECT_TRUE(slack.count(osim::Syscall::Futex));
    EXPECT_TRUE(slack.count(osim::Syscall::ShmOpen));
    // The dangerous set never hides inside the default slack.
    for (osim::Syscall call : slack)
        EXPECT_FALSE(isDangerousSurplusSyscall(call))
            << osim::syscallName(call);
}

} // namespace
