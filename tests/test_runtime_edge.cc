/**
 * @file
 * Edge-case and failure-injection tests for the runtime: dead hosts,
 * neutral APIs under non-default plans, protection of agent-resident
 * data, oversized messages, checkpoint cadence, restart home
 * reassignment, and the at-least-once / exactly-once seams.
 */

#include <gtest/gtest.h>

#include "core/runtime.hh"
#include "osim/fault_injection.hh"
#include "util/logging.hh"

namespace freepart::core {
namespace {


struct EdgeEnv {
    EdgeEnv() : registry(fw::buildFullRegistry())
    {
        analysis::HybridCategorizer categorizer(registry);
        cats = categorizer.categorizeAll();
    }

    std::unique_ptr<FreePartRuntime>
    makeRuntime(PartitionPlan plan, RuntimeConfig config = {})
    {
        kernel = std::make_unique<osim::Kernel>();
        fw::seedFixtureFiles(*kernel);
        return std::make_unique<FreePartRuntime>(
            *kernel, registry, cats, std::move(plan), config);
    }

    fw::ApiRegistry registry;
    analysis::Categorization cats;
    std::unique_ptr<osim::Kernel> kernel;
};

EdgeEnv &
env()
{
    static EdgeEnv instance;
    return instance;
}

TEST(RuntimeEdge, InvokeOnCrashedHostFailsGracefully)
{
    auto runtime = env().makeRuntime(PartitionPlan::freePartDefault());
    env().kernel->faultProcess(runtime->hostProcess(), "test");
    ApiResult result = runtime->invoke(
        "cv2.imread", {ipc::Value(std::string("/data/test.fpim"))});
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("crashed"), std::string::npos);
}

TEST(RuntimeEdge, NeutralApiFollowsContextOnlyUnderTypePlans)
{
    // Under a ByApi plan the neutral override must not apply (the
    // custom map is authoritative).
    std::map<std::string, uint32_t> map = {{"cv2.imread", 0},
                                           {"cv2.cvtColor", 1}};
    auto runtime =
        env().makeRuntime(PartitionPlan::custom(map, 2));
    ApiResult img = runtime->invoke(
        "cv2.imread", {ipc::Value(std::string("/data/test.fpim"))});
    ASSERT_TRUE(img.ok);
    ApiResult gray = runtime->invoke("cv2.cvtColor",
                                     {img.values[0]});
    ASSERT_TRUE(gray.ok);
    EXPECT_EQ(runtime->homeOf(gray.values[0].asRef().objectId), 1u);
}

TEST(RuntimeEdge, NeutralApiBeforeAnyConcreteCallUsesTypePartition)
{
    auto runtime = env().makeRuntime(PartitionPlan::freePartDefault());
    // cvtColor as the very first call: no context yet, so it lands
    // in the processing agent (its static type).
    uint64_t id = runtime->createHostMat(8, 8, 3, 1, "m");
    ApiResult gray = runtime->invoke(
        "cv2.cvtColor",
        {ipc::Value(ipc::ObjectRef{kHostPartition, id})});
    ASSERT_TRUE(gray.ok);
    EXPECT_EQ(runtime->homeOf(gray.values[0].asRef().objectId), 1u);
}

TEST(RuntimeEdge, PartitionDataIsAnnotatedAndProtected)
{
    auto runtime = env().makeRuntime(PartitionPlan::freePartDefault());
    osim::Addr addr = runtime->allocInPartition(1, "agent-data", 64);
    // Transitioning out of Initialization protects it, wherever it
    // lives.
    runtime->invoke("cv2.imread",
                    {ipc::Value(std::string("/data/test.fpim"))});
    osim::Process &agent =
        env().kernel->process(runtime->agentPid(1));
    EXPECT_THROW(agent.space().writeValue<uint8_t>(addr, 1),
                 osim::MemFault);
}

TEST(RuntimeEdge, SameStateDataStaysWritableUntilTransition)
{
    auto runtime = env().makeRuntime(PartitionPlan::freePartDefault());
    runtime->invoke("cv2.imread",
                    {ipc::Value(std::string("/data/test.fpim"))});
    // Data defined DURING the Loading state...
    osim::Addr addr = runtime->allocHostData("loading-data", 32);
    runtime->invoke("cv2.VideoCapture.read", {});
    // ...stays writable while still in Loading...
    EXPECT_NO_THROW(
        runtime->hostProcess().space().writeValue<uint8_t>(addr, 1));
    // ...and becomes read-only on the next transition.
    uint64_t id = runtime->createHostMat(8, 8, 1, 0, "m");
    runtime->invoke("cv2.GaussianBlur",
                    {ipc::Value(ipc::ObjectRef{kHostPartition, id})});
    EXPECT_THROW(
        runtime->hostProcess().space().writeValue<uint8_t>(addr, 2),
        osim::MemFault);
}

TEST(RuntimeEdge, RepeatedStateCycleReprotectsNewData)
{
    auto runtime = env().makeRuntime(PartitionPlan::freePartDefault());
    // Video loop: load -> process -> load -> process; each round's
    // loading-defined data is protected at the next transition.
    for (int round = 0; round < 3; ++round) {
        ApiResult frame = runtime->invoke("cv2.VideoCapture.read",
                                          {});
        ASSERT_TRUE(frame.ok);
        runtime->fetchToHost(frame.values[0].asRef());
        ApiResult blurred = runtime->invoke("cv2.GaussianBlur",
                                            {frame.values[0]});
        ASSERT_TRUE(blurred.ok);
        const fw::MatDesc &host_copy = runtime->hostStore().mat(
            frame.values[0].asRef().objectId);
        EXPECT_THROW(runtime->hostProcess().space().writeValue(
                         host_copy.addr, uint8_t{1}),
                     osim::MemFault)
            << "round " << round;
    }
    EXPECT_GE(runtime->stats().stateChanges, 6u);
}

TEST(RuntimeEdge, CheckpointIntervalControlsCadence)
{
    RuntimeConfig config;
    config.checkpointInterval = 2;
    auto runtime = env().makeRuntime(PartitionPlan::freePartDefault(),
                                     config);
    // Load a model (loading agent) then mutate it in place twice so
    // a checkpoint lands after the 2nd processing call.
    ApiResult model = runtime->invoke(
        "torch.load", {ipc::Value(std::string("/data/model.fpt"))});
    ASSERT_TRUE(model.ok);
    ApiResult data = runtime->invoke(
        "torch.load", {ipc::Value(std::string("/data/model.fpt"))});
    for (int i = 0; i < 2; ++i)
        ASSERT_TRUE(runtime
                        ->invoke("tf.estimator.DNNClassifier.train",
                                 {model.values[0], data.values[0]})
                        .ok);
    uint32_t p = runtime->homeOf(model.values[0].asRef().objectId);
    // Crash + restart: the checkpointed (twice-trained) weights come
    // back.
    env().kernel->faultProcess(
        env().kernel->process(runtime->agentPid(p)), "induced");
    ASSERT_TRUE(runtime->restartAgent(p));
    EXPECT_TRUE(runtime->storeOf(p).has(
        model.values[0].asRef().objectId));
}

TEST(RuntimeEdge, RestartReassignsLostObjectHomesToHostCopies)
{
    auto runtime = env().makeRuntime(PartitionPlan::freePartDefault());
    ApiResult img = runtime->invoke(
        "cv2.imread", {ipc::Value(std::string("/data/test.fpim"))});
    ipc::ObjectRef ref = img.values[0].asRef();
    // Host keeps a copy, then the object moves onward to processing.
    runtime->fetchToHost(ref);
    ApiResult blurred = runtime->invoke("cv2.GaussianBlur",
                                        {img.values[0]});
    ASSERT_TRUE(blurred.ok);
    uint32_t p = runtime->homeOf(ref.objectId);
    ASSERT_EQ(p, 1u);
    // Crash the processing agent; the home falls back to the host
    // copy, so the object stays usable.
    env().kernel->faultProcess(
        env().kernel->process(runtime->agentPid(1)), "induced");
    ASSERT_TRUE(runtime->restartAgent(1));
    EXPECT_EQ(runtime->homeOf(ref.objectId), kHostPartition);
    ApiResult again = runtime->invoke("cv2.GaussianBlur",
                                      {ipc::Value(ref)});
    EXPECT_TRUE(again.ok) << again.error;
}

TEST(RuntimeEdge, OversizedMessageIsAnExplicitError)
{
    RuntimeConfig config;
    config.ringBytes = 4096;
    auto runtime = env().makeRuntime(PartitionPlan::freePartDefault(),
                                     config);
    // imdecode carries the whole file as a blob inside the message.
    std::vector<uint8_t> blob = fw::encodeImageFile(
        64, 64, 3, fw::synthPixels(64, 64, 3, 0));
    ipc::ValueList args;
    args.emplace_back(std::move(blob));
    EXPECT_THROW(runtime->invoke("cv2.imdecode", std::move(args)),
                 util::FatalError);
}

TEST(RuntimeEdge, StatsLazyFractionBounds)
{
    RunStats stats;
    EXPECT_EQ(stats.lazyFraction(), 0.0);
    stats.lazyCopies = 95;
    stats.eagerCopies = 5;
    EXPECT_DOUBLE_EQ(stats.lazyFraction(), 0.95);
    EXPECT_EQ(stats.copyOps(), 100u);
}

TEST(RuntimeEdge, PartitionNamesAreDescriptive)
{
    PartitionPlan plan = PartitionPlan::freePartDefault();
    EXPECT_EQ(plan.partitionName(0), "agent:loading");
    EXPECT_EQ(plan.partitionName(2), "agent:visualizing");
    EXPECT_EQ(plan.partitionName(kHostPartition), "host");
    PartitionPlan custom = PartitionPlan::custom({{"a", 0}}, 1);
    EXPECT_EQ(custom.partitionName(0), "agent:0");
}

TEST(RuntimeEdge, GetFileWorksAfterLockdown)
{
    // The download socket is cached on first use, so the loading
    // agent can keep "downloading" after connect is dropped.
    auto runtime = env().makeRuntime(PartitionPlan::freePartDefault());
    ApiResult first = runtime->invoke(
        "tf.keras.utils.get_file",
        {ipc::Value(std::string("http://example.com/w"))});
    ASSERT_TRUE(first.ok) << first.error;
    runtime->lockdownAll();
    EXPECT_FALSE(
        runtime->agentFilter(0).permits(osim::Syscall::Connect));
    ApiResult second = runtime->invoke(
        "tf.keras.utils.get_file",
        {ipc::Value(std::string("http://example.com/w"))});
    EXPECT_TRUE(second.ok) << second.error;
}

TEST(RuntimeEdge, LockedAgentRejectsFreshMprotect)
{
    auto runtime = env().makeRuntime(PartitionPlan::freePartDefault());
    runtime->lockdownAll();
    osim::Process &agent =
        env().kernel->process(runtime->agentPid(1));
    osim::Addr addr = agent.space().alloc(64);
    EXPECT_THROW(env().kernel->sysMprotect(agent, addr, 64,
                                           osim::PermRWX),
                 osim::SyscallViolation);
}

TEST(RuntimeEdge, TrustedProtectStillWorksAfterLockdown)
{
    // The runtime's own mprotect path is kernel-trusted: locking the
    // agents must not break temporal protection.
    auto runtime = env().makeRuntime(PartitionPlan::freePartDefault());
    runtime->lockdownAll();
    osim::Addr addr = runtime->allocHostData("late-data", 64);
    runtime->invoke("cv2.imread",
                    {ipc::Value(std::string("/data/test.fpim"))});
    runtime->invoke("cv2.VideoCapture.read", {});
    uint64_t id = runtime->createHostMat(8, 8, 1, 0, "m");
    runtime->invoke("cv2.GaussianBlur",
                    {ipc::Value(ipc::ObjectRef{kHostPartition, id})});
    EXPECT_THROW(
        runtime->hostProcess().space().writeValue<uint8_t>(addr, 1),
        osim::MemFault);
}

TEST(RuntimeEdge, StoreOfHostReturnsHostStore)
{
    auto runtime = env().makeRuntime(PartitionPlan::freePartDefault());
    EXPECT_EQ(&runtime->storeOf(kHostPartition),
              &runtime->hostStore());
}

TEST(RuntimeEdge, HomeOfUnknownObjectPanics)
{
    auto runtime = env().makeRuntime(PartitionPlan::freePartDefault());
    EXPECT_ANY_THROW(runtime->homeOf(0xdeadbeefull));
}

TEST(RuntimeEdge, HasObjectSeesCheckpointHeldObjectsAcrossDeadRespawn)
{
    // A checkpointed object must keep resolving even when the fresh
    // incarnation is stillborn (injected restore crash) and the bulk
    // restore never ran: hasObject consults the checkpoint chains,
    // and the lost-scan eagerly rebuilds the object from them.
    RuntimeConfig config;
    config.checkpointInterval = 1;
    auto runtime = env().makeRuntime(PartitionPlan::freePartDefault(),
                                     config);
    ApiResult model = runtime->invoke(
        "torch.load", {ipc::Value(std::string("/data/model.fpt"))});
    ASSERT_TRUE(model.ok) << model.error;
    uint64_t id = model.values[0].asRef().objectId;
    uint32_t p = runtime->homeOf(id);

    osim::FaultInjector injector(1);
    env().kernel->setFaultInjector(&injector);
    osim::FaultSpec spec;
    spec.point = osim::FaultPoint::Restore;
    spec.action = osim::FaultAction::Crash;
    spec.pid = runtime->agentPid(p);
    spec.count = 1;
    injector.schedule(spec);

    env().kernel->faultProcess(
        env().kernel->process(runtime->agentPid(p)), "induced");
    EXPECT_FALSE(runtime->restartAgent(p)); // stillborn incarnation
    EXPECT_TRUE(runtime->hasObject(id));
    EXPECT_GE(runtime->stats().checkpointSourcedRestores, 1u);
    // The injected fault is spent: the next restart comes up and the
    // object is still usable.
    ASSERT_TRUE(runtime->restartAgent(p));
    EXPECT_TRUE(runtime->storeOf(runtime->homeOf(id)).has(id));
    env().kernel->setFaultInjector(nullptr);
}

TEST(RuntimeEdge, EvictedCheckpointedObjectStaysGone)
{
    // Eviction scrubs the checkpoint generations, so hasObject's
    // checkpoint scan must not resurrect data that was deliberately
    // handed to another runtime.
    RuntimeConfig config;
    config.checkpointInterval = 1;
    auto runtime = env().makeRuntime(PartitionPlan::freePartDefault(),
                                     config);
    ApiResult model = runtime->invoke(
        "torch.load", {ipc::Value(std::string("/data/model.fpt"))});
    ASSERT_TRUE(model.ok) << model.error;
    uint64_t id = model.values[0].asRef().objectId;
    ASSERT_TRUE(runtime->hasObject(id));
    runtime->evictObject(id);
    EXPECT_FALSE(runtime->hasObject(id));
}

TEST(RuntimeEdge, FetchToHostFallsBackToStaleAgentCopyAfterOwnerDeath)
{
    auto runtime = env().makeRuntime(PartitionPlan::freePartDefault());
    ApiResult img = runtime->invoke(
        "cv2.imread", {ipc::Value(std::string("/data/test.fpim"))});
    ASSERT_TRUE(img.ok) << img.error;
    ipc::ObjectRef ref = img.values[0].asRef();
    // The object moves loading -> processing; the loading agent keeps
    // a stale copy from before the LDC transfer. No host copy exists.
    ApiResult blurred =
        runtime->invoke("cv2.GaussianBlur", {img.values[0]});
    ASSERT_TRUE(blurred.ok) << blurred.error;
    ASSERT_EQ(runtime->homeOf(ref.objectId), 1u);
    ASSERT_FALSE(runtime->hostStore().has(ref.objectId));

    env().kernel->faultProcess(
        env().kernel->process(runtime->agentPid(1)), "induced");
    ASSERT_TRUE(runtime->restartAgent(1));
    // Home fell back to the loading agent's stale copy...
    EXPECT_EQ(runtime->homeOf(ref.objectId), 0u);
    // ...and a host dereference of that copy works.
    runtime->fetchToHost(ref);
    EXPECT_TRUE(runtime->hostStore().has(ref.objectId));
}

TEST(RuntimeEdge, EvictObjectPrunesDedupEntriesReferencingIt)
{
    auto runtime = env().makeRuntime(PartitionPlan::freePartDefault());
    ApiResult img = runtime->invoke(
        "cv2.imread", {ipc::Value(std::string("/data/test.fpim"))});
    ASSERT_TRUE(img.ok) << img.error;
    ApiResult blurred =
        runtime->invoke("cv2.GaussianBlur", {img.values[0]});
    ASSERT_TRUE(blurred.ok) << blurred.error;
    uint64_t result_id = blurred.values[0].asRef().objectId;
    size_t cached = runtime->seqCacheSize(1);
    ASSERT_GE(cached, 1u);
    // Evicting the result must drop the cached response that hands
    // out a ref to it — a dedup hit would otherwise dangle.
    runtime->evictObject(result_id);
    EXPECT_LT(runtime->seqCacheSize(1), cached);
    EXPECT_FALSE(runtime->hasObject(result_id));
}

TEST(RuntimeConfigValidation, RejectsBrokenCombinations)
{
    auto build = [&](RuntimeConfig config) {
        env().makeRuntime(PartitionPlan::freePartDefault(), config);
    };

    RuntimeConfig ok;
    EXPECT_NO_THROW(build(ok));

    RuntimeConfig interval;
    interval.checkpointInterval = 0;
    EXPECT_THROW(build(interval), util::FatalError);

    RuntimeConfig fullEvery;
    fullEvery.checkpointFullEvery = 0;
    EXPECT_THROW(build(fullEvery), util::FatalError);
    fullEvery.checkpointFullEvery = 1; // always-full is legal
    EXPECT_NO_THROW(build(fullEvery));

    RuntimeConfig ring;
    ring.ringBytes = 0;
    EXPECT_THROW(build(ring), util::FatalError);

    RuntimeConfig dedup;
    dedup.dedupCacheEntries = 0;
    EXPECT_THROW(build(dedup), util::FatalError);

    RuntimeConfig pipeline;
    pipeline.pipelineParallel = true;
    pipeline.maxInFlightPerPartition = 0;
    EXPECT_THROW(build(pipeline), util::FatalError);
    // Without the pipeline gate the in-flight knob is ignored.
    pipeline.pipelineParallel = false;
    EXPECT_NO_THROW(build(pipeline));

    RuntimeConfig batching;
    batching.adaptiveBatching = true;
    batching.hotWindowMaxDepth = 0;
    EXPECT_THROW(build(batching), util::FatalError);
    batching.hotWindowMaxDepth = 8;
    batching.batchDecayOccupancy = 0.5;
    batching.batchGrowOccupancy = 0.1; // decay above grow
    EXPECT_THROW(build(batching), util::FatalError);

    RuntimeConfig backoff;
    backoff.supervision.backoffFactor = 0.5;
    EXPECT_THROW(build(backoff), util::FatalError);

    RuntimeConfig loop;
    loop.supervision.crashLoopThreshold = 0;
    EXPECT_THROW(build(loop), util::FatalError);
}

} // namespace
} // namespace freepart::core
